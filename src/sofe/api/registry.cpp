#include "sofe/api/registry.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <stdexcept>
#include <utility>

#include "sofe/baselines/baselines.hpp"
#include "sofe/core/sofda_ss.hpp"
#include "sofe/dist/dist_sofda.hpp"
#include "sofe/util/stopwatch.hpp"

namespace sofe::api {

namespace {

/// SOFDA as a session: the closure over {VMs} ∪ {sources} persists across
/// solves (hub order matches core::sofda, so results are bit-identical to
/// the free function), pricing fans out over SolverOptions::threads, and —
/// with SolverOptions::incremental_pricing — the PricedChain cache rides
/// the closure session's change stream so a repaired arrival re-prices
/// only the touched chains (DESIGN.md §9).
class SofdaSolver final : public Solver {
 public:
  SofdaSolver(SolverOptions opt, std::string name) : Solver(opt), name_(std::move(name)) {}

  std::string_view name() const noexcept override { return name_; }

  bool wants_epoch_closure() const noexcept override { return true; }

 protected:
  ServiceForest do_solve(const Problem& p, SolveReport& r) override {
    if (p.destinations.empty()) return {};
    if (p.chain_length == 0) {
      // Pure multicast: no chains to price, no closure to cache.
      return core::sofda(p, opt_.algo(), &r.sofda);
    }
    std::vector<NodeId> hubs = p.vms();
    hubs.insert(hubs.end(), p.sources.begin(), p.sources.end());
    ClosureRequest req;
    req.threads = opt_.threads;
    req.incremental = opt_.incremental;
    req.bounded = opt_.bounded_closure;
    req.retention = opt_.retention_rows;
    // Pricing and chain lifting query hub-to-hub only; the re-homing
    // fallback additionally queries hub-to-destination — so destinations
    // complete the settle scope of a bounded closure.
    req.settle_targets = p.destinations;
    const auto& closure = session_.acquire(p.network, hubs, req, r);
    if (epoch_priced_) {
      // The cache is keyed to a published epoch closure, whose changes are
      // not in this session's own update stream: restart cold.
      pricing_.invalidate();
      epoch_priced_ = false;
    }

    util::Stopwatch watch;
    std::vector<core::PricedChain> candidates;
    if (opt_.incremental_pricing) {
      // The pricing cache must observe every closure change exactly once;
      // acquire() just ran, so last_update() is this solve's delta.
      core::PricingTally tally;
      const core::ClosureUpdate update = session_.last_update();
      candidates = core::price_candidate_chains(p, closure, p.sources, opt_.algo(),
                                                opt_.threads, &pricing_, &update, &tally);
      r.pricing_hits = tally.hits;
      r.pricing_repriced = tally.repriced;
      r.pricing_flushed = tally.flushed;
    } else {
      // Closure changes now go unobserved: restart the cache cold if the
      // knob is ever flipped back on.
      pricing_.invalidate();
      candidates = core::price_candidate_chains(p, closure, p.sources, opt_.algo(), opt_.threads);
    }
    r.pricing_seconds = watch.seconds();
    watch.reset();
    ServiceForest f = core::sofda_from_candidates(p, closure, candidates, opt_.algo(), &r.sofda);
    r.solve_seconds = watch.seconds();
    return f;
  }

  ServiceForest do_solve_epoch(const Problem& p, const ClosureEpoch& epoch,
                               SolveReport& r) override {
    if (p.destinations.empty()) return {};
    if (p.chain_length == 0) {
      // Pure multicast: the closure epoch is irrelevant.
      return core::sofda(p, opt_.algo(), &r.sofda);
    }
    // The published closure replaces the session's own: it covers the
    // union of every hub any worker of the epoch window needs (the
    // publisher guarantees this), and union extras are invisible to
    // queries — so candidates and forests are bit-identical to do_solve
    // on the same problem.
    const graph::MetricClosure& closure = *epoch.closure;
    assert(closure.is_hub(p.sources.front()) && "publisher must cover the epoch window's hubs");
    r.closure_hubs = static_cast<int>(closure.hub_count());
    r.closure_cache_hit = epoch.update.kind == core::ClosureUpdate::Kind::kUnchanged;
    r.closure_repaired = epoch.update.kind == core::ClosureUpdate::Kind::kRepaired;

    util::Stopwatch watch;
    std::vector<core::PricedChain> candidates;
    if (opt_.incremental_pricing) {
      // Fork-from-epoch pricing (DESIGN.md §10): the epoch's one update
      // reaches every worker; price_epoch dedups it by generation.
      core::PricingTally tally;
      candidates = pricing_.price_epoch(p, closure, p.sources, epoch.generation, epoch.update,
                                        opt_.algo(), opt_.threads, &tally);
      r.pricing_hits = tally.hits;
      r.pricing_repriced = tally.repriced;
      r.pricing_flushed = tally.flushed;
      epoch_priced_ = true;
    } else {
      pricing_.invalidate();
      candidates = core::price_candidate_chains(p, closure, p.sources, opt_.algo(), opt_.threads);
    }
    r.pricing_seconds = watch.seconds();
    watch.reset();
    ServiceForest f = core::sofda_from_candidates(p, closure, candidates, opt_.algo(), &r.sofda);
    r.solve_seconds = watch.seconds();
    return f;
  }

 private:
  std::string name_;
  ClosureSession session_;
  core::PricingSession pricing_;
  bool epoch_priced_ = false;  // pricing cache keyed to an epoch closure
};

/// SOFDA-SS session over p.sources.front(); the closure over
/// {VMs} ∪ {source} persists across solves.
class SofdaSsSolver final : public Solver {
 public:
  using Solver::Solver;

  std::string_view name() const noexcept override { return "sofda-ss"; }

 protected:
  ServiceForest do_solve(const Problem& p, SolveReport& r) override {
    if (p.destinations.empty()) return {};
    const NodeId source = p.sources.front();
    std::vector<NodeId> hubs = p.vms();
    hubs.push_back(source);
    ClosureRequest req;
    req.threads = opt_.threads;
    req.incremental = opt_.incremental;
    // SOFDA-SS queries the closure hub-to-hub only (chain planning; the
    // distribution part rides its own Steiner trees), so a bounded scope
    // needs no extra targets.
    req.bounded = opt_.bounded_closure;
    req.retention = opt_.retention_rows;
    const auto& closure = session_.acquire(p.network, hubs, req, r);
    util::Stopwatch watch;
    ServiceForest f = core::sofda_ss(p, source, closure, opt_.algo());
    r.solve_seconds = watch.seconds();
    return f;
  }

 private:
  ClosureSession session_;
};

/// Thin adapters over the remaining free functions; the uniform Solver
/// surface (options, report, registry selection) is the point here.
class BaselineSolver final : public Solver {
 public:
  BaselineSolver(SolverOptions opt, baselines::Kind kind, std::string name)
      : Solver(opt), kind_(kind), name_(std::move(name)) {}

  std::string_view name() const noexcept override { return name_; }

 protected:
  ServiceForest do_solve(const Problem& p, SolveReport& r) override {
    util::Stopwatch watch;
    ServiceForest f = baselines::run(p, kind_, opt_.algo());
    r.solve_seconds = watch.seconds();
    return f;
  }

 private:
  baselines::Kind kind_;
  std::string name_;
};

/// Multi-controller SOFDA as a session: the sharded closure (DESIGN.md §11)
/// persists across solves through ClosureSession::acquire_sharded, so an
/// arrival stream's repeated solves repair the per-domain shards and
/// re-exchange only dirtied border rows instead of rebuilding and
/// re-shipping the whole advertisement every call.  Every exchange — cold
/// or incremental — is charged on a per-solve MessageBus, and results stay
/// bit-identical to the free dist::distributed_sofda at any k and thread
/// count (tested).
class DistSolver final : public Solver {
 public:
  DistSolver(SolverOptions opt, int controllers)
      : Solver(opt),
        controllers_(controllers),
        name_("dist/k=" + std::to_string(controllers)) {}

  std::string_view name() const noexcept override { return name_; }

 protected:
  ServiceForest do_solve(const Problem& p, SolveReport& r) override {
    const int n = static_cast<int>(p.network.node_count());
    const int k = std::clamp(controllers_, 1, std::max(n, 1));
    if (k == 1 || p.chain_length == 0 || p.destinations.empty()) {
      // One controller or a pipeline-less instance: centralized, no
      // protocol, nothing worth caching across solves.
      util::Stopwatch watch;
      auto result = dist::distributed_sofda(p, k, opt_.algo());
      r.solve_seconds = watch.seconds();
      fill(r, result);
      return std::move(result.forest);
    }

    dist::MessageBus bus;
    std::vector<NodeId> hubs = p.vms();
    hubs.insert(hubs.end(), p.sources.begin(), p.sources.end());
    ClosureRequest req;
    req.threads = opt_.threads;
    req.incremental = opt_.incremental;
    req.bounded = opt_.bounded_closure;
    req.retention = opt_.retention_rows;
    req.settle_targets = p.destinations;  // the sharded advertisement targets
    const dist::ShardedClosure& sc = session_.acquire_sharded(p.network, hubs, k, req, bus, r);

    util::Stopwatch watch;
    auto result = dist::distributed_sofda_with(p, sc, bus, opt_.algo());
    r.solve_seconds = watch.seconds();
    fill(r, result);
    return std::move(result.forest);
  }

 private:
  static void fill(SolveReport& r, const dist::DistSofdaResult& result) {
    r.sofda = result.stats;
    r.controllers = result.controllers;
    r.messages = result.messages;
    r.payload_items = result.payload_items;
    r.payload_bytes = result.payload_bytes;
    r.rounds = result.rounds;
  }

  int controllers_;
  std::string name_;
  ClosureSession session_;
};

class ExactSolver final : public Solver {
 public:
  using Solver::Solver;

  std::string_view name() const noexcept override { return "exact"; }

 protected:
  ServiceForest do_solve(const Problem& p, SolveReport& r) override {
    util::Stopwatch watch;
    auto result = exact::solve_exact(p, opt_.exact_limits);
    r.solve_seconds = watch.seconds();
    r.optimal = result.optimal;
    r.bnb_nodes = result.bnb_nodes;
    // A truncated search still returns its best incumbent (empty only when
    // the instance is genuinely infeasible or no incumbent was found);
    // report().optimal distinguishes proven from best-so-far.
    return std::move(result.forest);
  }
};

/// Parses the k of "dist/k=<int>"; returns 0 when `name` is not of that
/// form (k >= 1 on success).
int parse_dist_controllers(std::string_view name) {
  constexpr std::string_view kPrefix = "dist/k=";
  if (!name.starts_with(kPrefix)) return 0;
  const std::string_view num = name.substr(kPrefix.size());
  int k = 0;
  const auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(), k);
  if (ec != std::errc{} || ptr != num.data() + num.size() || k < 1) return 0;
  return k;
}

void register_builtins(SolverRegistry& reg) {
  reg.add("sofda", "SOFDA (Algorithm 2): 3rhoST-approximation, multi-source",
          [](const SolverOptions& opt) { return std::make_unique<SofdaSolver>(opt, "sofda"); });
  reg.add("sofda/exact-stroll", "SOFDA with the exact-DP k-stroll oracle",
          [](const SolverOptions& opt) {
            SolverOptions o = opt;
            o.stroll = kstroll::StrollAlgorithm::kExactDp;
            return std::make_unique<SofdaSolver>(o, "sofda/exact-stroll");
          });
  reg.add("sofda-ss", "SOFDA-SS (Algorithm 1): single-source (2+rhoST)-approximation",
          [](const SolverOptions& opt) { return std::make_unique<SofdaSsSolver>(opt); });
  reg.add("baseline/st", "ST: best single Steiner tree + grafted service chain",
          [](const SolverOptions& opt) {
            return std::make_unique<BaselineSolver>(opt, baselines::Kind::kSt, "baseline/st");
          });
  reg.add("baseline/est", "eST: ST + iterative multi-source extension",
          [](const SolverOptions& opt) {
            return std::make_unique<BaselineSolver>(opt, baselines::Kind::kEst, "baseline/est");
          });
  reg.add("baseline/enemp", "eNEMP: NFV-enabled multicast baseline, extended",
          [](const SolverOptions& opt) {
            return std::make_unique<BaselineSolver>(opt, baselines::Kind::kEnemp,
                                                    "baseline/enemp");
          });
  for (int k : {2, 4}) {
    reg.add("dist/k=" + std::to_string(k),
            "multi-controller SOFDA, " + std::to_string(k) + " controllers",
            [k](const SolverOptions& opt) { return std::make_unique<DistSolver>(opt, k); });
  }
  reg.add("exact", "exact branch-and-bound optimum (SolverOptions::exact_limits)",
          [](const SolverOptions& opt) { return std::make_unique<ExactSolver>(opt); });
}

}  // namespace

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry reg = [] {
    SolverRegistry r;
    register_builtins(r);
    return r;
  }();
  return reg;
}

void SolverRegistry::add(std::string name, std::string description, Factory factory) {
  assert(factory != nullptr);
  entries_.insert_or_assign(std::move(name), Entry{std::move(description), std::move(factory)});
}

bool SolverRegistry::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end() || parse_dist_controllers(name) > 0;
}

std::unique_ptr<Solver> SolverRegistry::create(std::string_view name,
                                               const SolverOptions& opt) const {
  const auto it = entries_.find(name);
  if (it != entries_.end()) return it->second.factory(opt);
  if (constexpr std::string_view kDistPrefix = "dist/k="; name.starts_with(kDistPrefix)) {
    // The dist family is parameterized, so create() parses — and a request
    // that *names* the family but botches the parameter is a malformed
    // argument, not an unknown solver: reject it loudly (naming the field)
    // instead of silently clamping or falling through to the generic list.
    const std::string_view num = name.substr(kDistPrefix.size());
    int k = 0;
    const auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(), k);
    if (ec != std::errc{} || ptr != num.data() + num.size()) {
      throw std::invalid_argument("dist/k: controller count must be a base-10 integer, got \"" +
                                  std::string(num) + "\"");
    }
    if (k < 1) {
      throw std::invalid_argument("dist/k: controller count must be >= 1, got " +
                                  std::to_string(k));
    }
    return std::make_unique<DistSolver>(opt, k);
  }
  std::string msg = "unknown solver \"" + std::string(name) + "\"; registered:";
  for (const auto& [n, e] : entries_) {
    (void)e;
    msg += " " + n;
  }
  throw std::invalid_argument(msg);
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [n, e] : entries_) {
    (void)e;
    out.push_back(n);
  }
  return out;
}

std::string SolverRegistry::describe(std::string_view name) const {
  const auto it = entries_.find(name);
  return it != entries_.end() ? it->second.description : std::string{};
}

std::unique_ptr<Solver> make_solver(std::string_view name, const SolverOptions& opt) {
  return SolverRegistry::global().create(name, opt);
}

}  // namespace sofe::api
