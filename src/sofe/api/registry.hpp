#pragma once
// String-keyed solver registry (DESIGN.md §7).
//
// Benches, examples, tests and the online simulator select algorithms by
// name instead of hand-wiring lambdas over the free functions:
//
//   auto solver = sofe::api::make_solver("sofda");
//   auto forest = solver->solve(problem);
//
// Built-in names:
//   sofda                 SOFDA (Algorithm 2), the 3ρST approximation
//   sofda/exact-stroll    SOFDA with the exact-DP k-stroll oracle
//   sofda-ss              SOFDA-SS (Algorithm 1), p.sources.front()
//   baseline/st           ST   — best single Steiner tree + grafted chain
//   baseline/est          eST  — ST + iterative multi-source extension
//   baseline/enemp        eNEMP — NFV-enabled-multicast baseline, extended
//   dist/k=<int>          multi-controller SOFDA with k controllers
//                         (parameterized: any k >= 1 parses; k=2 and k=4
//                         are pre-registered so enumeration shows the form)
//   exact                 exact branch-and-bound (SolverOptions::exact_limits)
//
// The registry is open: callers may add their own factories (names are
// unique; re-registering a name replaces the factory, enabling test fakes).

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sofe/api/solver.hpp"

namespace sofe::api {

class SolverRegistry {
 public:
  /// Builds a fresh solver session for the given options.
  using Factory = std::function<std::unique_ptr<Solver>(const SolverOptions&)>;

  /// The process-wide registry, populated with the built-ins above on first
  /// use.
  static SolverRegistry& global();

  /// Registers (or replaces) a named factory.
  void add(std::string name, std::string description, Factory factory);

  /// Whether create(name) would succeed (includes synthesized dist/k=N).
  bool contains(std::string_view name) const;

  /// Creates a solver session.  Exact names are looked up first; a name of
  /// the form "dist/k=<int>" is synthesized on the fly for any k >= 1.
  /// Throws std::invalid_argument for an unknown name (the message lists
  /// the registered names).
  std::unique_ptr<Solver> create(std::string_view name, const SolverOptions& opt = {}) const;

  /// Registered names, sorted (what --help menus and tests enumerate).
  std::vector<std::string> names() const;

  /// One-line description of a registered name ("" when unknown).
  std::string describe(std::string_view name) const;

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Shorthand for SolverRegistry::global().create(name, opt).
std::unique_ptr<Solver> make_solver(std::string_view name, const SolverOptions& opt = {});

}  // namespace sofe::api
