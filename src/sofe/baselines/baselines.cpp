#include "sofe/baselines/baselines.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "sofe/graph/metric_closure.hpp"
#include "sofe/steiner/steiner.hpp"

namespace sofe::baselines {

using core::ChainPlan;
using core::ChainWalk;
using core::Cost;
using core::total_cost;
using graph::EdgeId;
using graph::NodeId;

namespace {

/// Rooted tree-path helper over an edge subset (same pattern as SOFDA-SS).
class TreePaths {
 public:
  TreePaths(const graph::Graph& g, const std::vector<EdgeId>& edges, NodeId root)
      : root_(root) {
    parent_.assign(static_cast<std::size_t>(g.node_count()), graph::kInvalidNode);
    visited_.assign(static_cast<std::size_t>(g.node_count()), false);
    std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(g.node_count()));
    for (EdgeId e : edges) {
      adj[static_cast<std::size_t>(g.edge(e).u)].push_back(g.edge(e).v);
      adj[static_cast<std::size_t>(g.edge(e).v)].push_back(g.edge(e).u);
    }
    std::vector<NodeId> stack{root};
    visited_[static_cast<std::size_t>(root)] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      nodes_.push_back(v);
      for (NodeId w : adj[static_cast<std::size_t>(v)]) {
        if (!visited_[static_cast<std::size_t>(w)]) {
          visited_[static_cast<std::size_t>(w)] = true;
          parent_[static_cast<std::size_t>(w)] = v;
          stack.push_back(w);
        }
      }
    }
  }

  bool reaches(NodeId v) const { return visited_[static_cast<std::size_t>(v)]; }
  const std::vector<NodeId>& nodes() const noexcept { return nodes_; }

  std::vector<NodeId> path_from_root(NodeId v) const {
    std::vector<NodeId> rev;
    for (NodeId x = v; x != graph::kInvalidNode; x = parent_[static_cast<std::size_t>(x)]) {
      rev.push_back(x);
    }
    assert(rev.back() == root_);
    return {rev.rbegin(), rev.rend()};
  }

 private:
  NodeId root_;
  std::vector<NodeId> parent_;
  std::vector<bool> visited_;
  std::vector<NodeId> nodes_;
};

/// Builds the forest "chain (source→u) + connector (u→attach) + tree paths
/// (attach→d)".  Returns an empty forest when the tree misses a node.
ServiceForest build_grafted_forest(const Problem& p, const ChainPlan& chain,
                                   const std::vector<NodeId>& connector,  // u ... attach
                                   const TreePaths& tree) {
  ServiceForest f;
  const NodeId attach = connector.back();
  for (NodeId d : p.destinations) {
    if (!tree.reaches(d) || !tree.reaches(attach)) return {};
    ChainWalk w;
    w.source = chain.source;
    w.destination = d;
    w.nodes = chain.nodes;
    w.vnf_pos = chain.vnf_pos;
    w.nodes.insert(w.nodes.end(), connector.begin() + 1, connector.end());
    // attach -> d inside the tree, via the two root paths' split point.
    const auto pa = tree.path_from_root(attach);
    const auto pd = tree.path_from_root(d);
    std::size_t lca = 0;
    while (lca + 1 < pa.size() && lca + 1 < pd.size() && pa[lca + 1] == pd[lca + 1]) ++lca;
    for (std::size_t i = pa.size() - 1; i > lca; --i) w.nodes.push_back(pa[i - 1]);
    for (std::size_t i = lca + 1; i < pd.size(); ++i) w.nodes.push_back(pd[i]);
    f.walks.push_back(std::move(w));
  }
  return f;
}

}  // namespace

ServiceForest single_tree_est(const Problem& p, NodeId source,
                              const std::vector<NodeId>& usable_vms, const AlgoOptions& opt) {
  ServiceForest best;
  if (p.destinations.empty() || usable_vms.empty()) return best;

  // The multicast tree spans the source and all destinations (the classic
  // Steiner-tree solution, oblivious to NFV).
  std::vector<NodeId> terminals = p.destinations;
  terminals.push_back(source);
  const auto tree = steiner::solve(p.network, terminals, opt.steiner);
  const TreePaths paths(p.network, tree.edges, source);

  std::vector<NodeId> hubs = usable_vms;
  hubs.push_back(source);
  const graph::MetricClosure closure(p.network, hubs, opt.closure_threads);

  // The paper's eST: the tree is fixed first (NFV-oblivious); the grafted
  // chain is the one minimizing  chain cost + connector cost to the tree  —
  // it does NOT re-evaluate the full forest for every candidate, which is
  // exactly why eST misses VM/tree co-placement opportunities (§VIII-B).
  Cost best_score = graph::kInfiniteCost;
  ChainPlan best_chain;
  std::vector<NodeId> best_connector;
  for (NodeId u : usable_vms) {
    if (u == source) continue;
    const ChainPlan chain = core::plan_chain_walk(p, closure, source, usable_vms, u, opt);
    if (!chain.feasible()) continue;
    const auto& sp = closure.tree(u);
    NodeId attach = graph::kInvalidNode;
    Cost attach_cost = graph::kInfiniteCost;
    for (NodeId t : paths.nodes()) {
      if (sp.reachable(t) && sp.distance(t) < attach_cost) {
        attach_cost = sp.distance(t);
        attach = t;
      }
    }
    if (attach == graph::kInvalidNode) continue;
    const Cost score = chain.cost + attach_cost;
    if (score < best_score) {
      best_score = score;
      best_chain = chain;
      best_connector = sp.path_to(attach);
    }
  }
  if (best_score == graph::kInfiniteCost) return best;
  return build_grafted_forest(p, best_chain, best_connector, paths);
}

ServiceForest single_tree_enemp(const Problem& p, NodeId source,
                                const std::vector<NodeId>& usable_vms, const AlgoOptions& opt) {
  ServiceForest best;
  if (p.destinations.empty() || usable_vms.empty()) return best;

  std::vector<NodeId> terminals = p.destinations;
  terminals.push_back(source);
  const auto tree = steiner::solve(p.network, terminals, opt.steiner);
  const TreePaths paths(p.network, tree.edges, source);

  std::vector<NodeId> hubs = usable_vms;
  hubs.push_back(source);
  const graph::MetricClosure closure(p.network, hubs, opt.closure_threads);

  // NEMP's chain must end on a VM *spanned by the tree* (the paper's
  // extension: "the chain spans the VM that has been chosen in the tree").
  // A VM at zero distance from a tree node — e.g. tap-attached to a DC the
  // tree crosses — counts as spanned.
  std::vector<NodeId> on_tree;
  for (NodeId v : usable_vms) {
    if (v == source) continue;
    if (paths.reaches(v)) {
      on_tree.push_back(v);
      continue;
    }
    const auto& sp = closure.tree(v);
    for (NodeId t : paths.nodes()) {
      if (sp.reachable(t) && sp.distance(t) == 0.0) {
        on_tree.push_back(v);
        break;
      }
    }
  }
  // When the tree holds no usable VM, fall back to the VM nearest the tree.
  if (on_tree.empty()) {
    NodeId nearest = graph::kInvalidNode;
    Cost nearest_cost = graph::kInfiniteCost;
    for (NodeId v : usable_vms) {
      if (v == source) continue;
      const auto& sp = closure.tree(v);
      for (NodeId t : paths.nodes()) {
        if (sp.reachable(t) && sp.distance(t) < nearest_cost) {
          nearest_cost = sp.distance(t);
          nearest = v;
        }
      }
    }
    if (nearest == graph::kInvalidNode) return best;
    on_tree.push_back(nearest);
  }

  // eNEMP grafts the cheapest chain ending at a tree-spanned VM (attach
  // cost is zero when the last VM already sits on the tree).
  Cost best_score = graph::kInfiniteCost;
  ChainPlan best_chain;
  std::vector<NodeId> best_connector;
  for (NodeId u : on_tree) {
    const ChainPlan chain = core::plan_chain_walk(p, closure, source, usable_vms, u, opt);
    if (!chain.feasible()) continue;
    const auto& sp = closure.tree(u);
    NodeId attach = graph::kInvalidNode;
    Cost attach_cost = graph::kInfiniteCost;
    for (NodeId t : paths.nodes()) {
      if (sp.reachable(t) && sp.distance(t) < attach_cost) {
        attach_cost = sp.distance(t);
        attach = t;
      }
    }
    if (attach == graph::kInvalidNode) continue;
    const Cost score = chain.cost + attach_cost;
    if (score < best_score) {
      best_score = score;
      best_chain = chain;
      best_connector = sp.path_to(attach);
    }
  }
  if (best_score == graph::kInfiniteCost) return best;
  return build_grafted_forest(p, best_chain, best_connector, paths);
}

namespace {

using SingleTreeFn = ServiceForest (*)(const Problem&, NodeId, const std::vector<NodeId>&,
                                       const AlgoOptions&);

/// The paper's source election: "the minimum-cost tree among all Steiner
/// trees rooted at different sources" — chosen by tree cost alone
/// (NFV-oblivious), then the chain is grafted by `fn`.
ServiceForest best_single(const Problem& p, SingleTreeFn fn, const AlgoOptions& opt,
                          NodeId* chosen_source) {
  NodeId best_s = graph::kInvalidNode;
  Cost best_tree = graph::kInfiniteCost;
  for (NodeId s : p.sources) {
    std::vector<NodeId> terminals = p.destinations;
    terminals.push_back(s);
    const Cost c = steiner::solve(p.network, terminals, opt.steiner).cost(p.network);
    if (c < best_tree) {
      best_tree = c;
      best_s = s;
    }
  }
  if (best_s == graph::kInvalidNode) return {};
  if (chosen_source != nullptr) *chosen_source = best_s;
  return fn(p, best_s, p.vms(), opt);
}

/// The paper's multi-source extension: iteratively add a service tree rooted
/// at an unused source (on unused VMs) while the combined forest — with each
/// destination served by its cheapest tree — improves.
ServiceForest multi_source(const Problem& p, SingleTreeFn fn, const AlgoOptions& opt) {
  NodeId used_source = graph::kInvalidNode;
  ServiceForest forest = best_single(p, fn, opt, &used_source);
  if (forest.empty()) return forest;

  std::set<NodeId> used_sources{used_source};
  auto used_vms = [&] {
    std::set<NodeId> used;
    for (const auto& [vm, idx] : forest.enabled_vms()) {
      (void)idx;
      used.insert(vm);
    }
    return used;
  };

  bool improved = true;
  while (improved) {
    improved = false;
    Cost current = total_cost(p, forest);
    const auto used = used_vms();
    std::vector<NodeId> free_vms;
    for (NodeId v : p.vms()) {
      if (!used.contains(v)) free_vms.push_back(v);
    }
    if (free_vms.empty()) break;

    for (NodeId s : p.sources) {
      if (used_sources.contains(s)) continue;
      ServiceForest candidate = fn(p, s, free_vms, opt);
      if (candidate.empty()) continue;
      // Merge: each destination keeps the cheaper of its two walks, judged
      // by the combined forest cost (shared structure priced once).
      ServiceForest merged = forest;
      bool any = false;
      for (std::size_t i = 0; i < merged.walks.size(); ++i) {
        const auto it = std::find_if(
            candidate.walks.begin(), candidate.walks.end(),
            [&](const ChainWalk& w) { return w.destination == merged.walks[i].destination; });
        if (it == candidate.walks.end()) continue;
        ServiceForest trial = merged;
        trial.walks[i] = *it;
        if (total_cost(p, trial) < total_cost(p, merged)) {
          merged = std::move(trial);
          any = true;
        }
      }
      if (!any) continue;
      const Cost c = total_cost(p, merged);
      if (c < current) {
        forest = std::move(merged);
        current = c;
        used_sources.insert(s);
        improved = true;
        break;  // re-derive used VMs before trying further sources
      }
    }
  }
  return forest;
}

}  // namespace

ServiceForest run(const Problem& p, Kind kind, const AlgoOptions& opt) {
  switch (kind) {
    case Kind::kSt:
      return best_single(p, &single_tree_est, opt, nullptr);
    case Kind::kEst:
      return multi_source(p, &single_tree_est, opt);
    case Kind::kEnemp:
      return multi_source(p, &single_tree_enemp, opt);
  }
  return {};
}

}  // namespace sofe::baselines
