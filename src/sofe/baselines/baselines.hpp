#pragma once
// Comparison algorithms from Section VIII-A.
//
//  * ST      — one Steiner tree over {s*} ∪ D for the best single source,
//              with the cheapest service chain grafted onto it ("a special
//              case with only one Steiner tree connected with a service
//              chain").
//  * eST     — the Steiner-tree baseline extended as the paper describes:
//              best single tree, then iterative addition of service trees
//              rooted at unused sources (VNFs on unused VMs) while the total
//              forest cost decreases; each destination is served by its
//              cheapest tree.
//  * eNEMP   — the NFV-enabled-multicast baseline [27] extended the same
//              way; its chain must end on a VM already spanned by the tree.
//
// All baselines emit feasible ServiceForests (same validator as SOFDA), so
// every comparison is like for like.

#include "sofe/core/chain_walk.hpp"
#include "sofe/core/forest.hpp"

namespace sofe::baselines {

using core::AlgoOptions;
using core::Problem;
using core::ServiceForest;

enum class Kind {
  kSt,     // best single source, free last VM
  kEst,    // ST + multi-source iterative extension
  kEnemp,  // tree-constrained last VM + multi-source iterative extension
};

/// Runs the selected baseline.  Returns an empty forest when infeasible.
ServiceForest run(const Problem& p, Kind kind, const AlgoOptions& opt = {});

/// Single-tree building blocks (exposed for tests).
ServiceForest single_tree_est(const Problem& p, graph::NodeId source,
                              const std::vector<graph::NodeId>& usable_vms,
                              const AlgoOptions& opt);
ServiceForest single_tree_enemp(const Problem& p, graph::NodeId source,
                                const std::vector<graph::NodeId>& usable_vms,
                                const AlgoOptions& opt);

}  // namespace sofe::baselines
