// Table I: SOFDA running time (seconds) vs network size |V| in
// {1000..5000} and source count |S| in {2, 8, 14, 20, 26}, on Inet-style
// synthetic networks (links = 2|V|, DCs = 0.4|V|, |M| = 25, |D| = 6,
// |C| = 3).
//
// Expected shape: grows with both |V| and |S| (|S|·|M| k-stroll pricings
// dominate per the complexity analysis of Section V); absolute numbers are
// hardware-dependent.  Uses google-benchmark manual timing underneath and
// prints the paper-style matrix at the end.

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "sofe/api/registry.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/stopwatch.hpp"
#include "sofe/util/table.hpp"

namespace {

const std::vector<int> kNodes{1000, 2000, 3000, 4000, 5000};
const std::vector<int> kSources{2, 8, 14, 20, 26};
std::map<std::pair<int, int>, double> g_seconds;

void sofda_runtime(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int sources = static_cast<int>(state.range(1));
  const auto topo = sofe::topology::inet(nodes, nodes * 2, nodes * 2 / 5, 7);
  sofe::topology::ProblemConfig cfg;
  cfg.num_sources = sources;
  cfg.num_destinations = 6;
  cfg.num_vms = 25;
  cfg.chain_length = 3;
  cfg.seed = 99;
  const auto p = sofe::topology::make_problem(topo, cfg);
  const auto solver = sofe::api::make_solver("sofda");
  double last = 0.0;
  for (auto _ : state) {
    auto f = solver->solve(p);
    last = solver->report().total_seconds;
    benchmark::DoNotOptimize(f);
    state.SetIterationTime(last);
  }
  g_seconds[{nodes, sources}] = last;
}

}  // namespace

int main(int argc, char** argv) {
  for (int n : kNodes) {
    for (int s : kSources) {
      benchmark::RegisterBenchmark(
          ("SOFDA/V:" + std::to_string(n) + "/S:" + std::to_string(s)).c_str(), sofda_runtime)
          ->Args({n, s})
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::cout << "\n=== Table I: SOFDA running time (seconds) ===\n";
  std::vector<std::string> header{"|V|"};
  for (int s : kSources) header.push_back("|S|=" + std::to_string(s));
  sofe::util::Table table(header);
  for (int n : kNodes) {
    std::vector<std::string> row{std::to_string(n)};
    for (int s : kSources) row.push_back(sofe::util::Table::num(g_seconds[{n, s}], 3));
    table.add_row(std::move(row));
  }
  table.print();
  std::cout << "(shape check: time grows with |V| and with |S|)\n";
  return 0;
}
