// Fig. 8: one-time deployment cost on the SoftLayer inter-DC network
// (27 nodes, 49 links, 17 DCs) vs #sources, #destinations, #VMs and chain
// length.  Series: SOFDA, eNEMP, eST, ST and the exact optimum ("CPLEX*",
// our branch-and-bound DST solver — DESIGN.md §3).
//
// Expected shape (paper): SOFDA tracks CPLEX* closely and undercuts
// eNEMP/eST/ST; cost falls with more sources and VMs, rises with more
// destinations and longer chains.

#include <iostream>

#include "bench_util.hpp"

int main() {
  std::cout << "=== Fig. 8: one-time deployment cost, SoftLayer ===\n";
  std::cout << "(defaults: |S|=14, |D|=6, |M|=25, |C|=3; mean over "
            << sofe::bench::seeds_per_cell() << " seeds; CPLEX* = exact solver)\n";
  sofe::bench::run_cost_figure(sofe::topology::softlayer(), /*with_exact=*/true,
                               /*scale=*/1.0);
  return 0;
}
