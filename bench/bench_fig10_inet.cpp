// Fig. 10: one-time deployment cost on the Inet-style synthetic network
// (5000 nodes, 10000 links, 2000 DCs), cost reported in thousands as in the
// paper.  Override SOFE_INET_NODES to shrink for smoke runs.

#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"

int main() {
  int nodes = 5000;
  if (const char* env = std::getenv("SOFE_INET_NODES")) {
    const int v = std::atoi(env);
    if (v >= 100) nodes = v;
  }
  const int links = nodes * 2;
  const int dcs = nodes * 2 / 5;
  std::cout << "=== Fig. 10: one-time deployment cost, Inet synthetic (" << nodes
            << " nodes, " << links << " links, " << dcs << " DCs); cost in units ===\n";
  std::cout << "(defaults: |S|=14, |D|=6, |M|=25, |C|=3; mean over "
            << sofe::bench::seeds_per_cell() << " seeds)\n";
  const auto topo = sofe::topology::inet(nodes, links, dcs, 1);
  sofe::bench::run_cost_figure(topo, /*with_exact=*/false, /*scale=*/1.0);
  return 0;
}
