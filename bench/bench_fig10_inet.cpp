// Fig. 10: one-time deployment cost on the Inet-style synthetic network
// (5000 nodes, 10000 links, 2000 DCs), cost reported in thousands as in the
// paper.  Override SOFE_INET_NODES to shrink for smoke runs.
//
// PR 7 adds the multi-controller k-sweep panel (DESIGN.md §11) on the same
// synthetic network — the regime where sharding pays: per-domain closure
// builds over |V|/k-node subgraphs instead of one |V|-node global build,
// border-row exchange instead of O(|V|²) state.  Every point is asserted
// bitwise identical to the centralized "sofda" run (exit 1 on divergence).
//
// Flags:
//   --smoke   dist panel only on a shrunken network (seconds, CI-friendly);
//             the JSON carries "smoke": true
//   --json    additionally write the k-sweep to BENCH_dist.json

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  int nodes = smoke ? 300 : 5000;
  if (const char* env = std::getenv("SOFE_INET_NODES")) {
    const int v = std::atoi(env);
    if (v >= 100) nodes = v;
  }
  const int links = nodes * 2;
  const int dcs = nodes * 2 / 5;
  const auto topo = sofe::topology::inet(nodes, links, dcs, 1);

  if (!smoke) {
    std::cout << "=== Fig. 10: one-time deployment cost, Inet synthetic (" << nodes
              << " nodes, " << links << " links, " << dcs << " DCs); cost in units ===\n";
    std::cout << "(defaults: |S|=14, |D|=6, |M|=25, |C|=3; mean over "
              << sofe::bench::seeds_per_cell() << " seeds)\n";
    sofe::bench::run_cost_figure(topo, /*with_exact=*/false, /*scale=*/1.0);
  } else {
    std::cout << "=== Fig. 10 (smoke): multi-controller k-sweep, Inet (" << nodes
              << " nodes) ===\n";
  }

  sofe::topology::ProblemConfig cfg;  // paper defaults: 14/6/25, |C|=3
  cfg.seed = 10;
  sofe::online::OnlineConfig online_cfg;
  online_cfg.requests = smoke ? 4 : 12;
  online_cfg.min_destinations = 4;
  online_cfg.max_destinations = 6;
  online_cfg.min_sources = 2;
  online_cfg.max_sources = 3;
  online_cfg.seed = 10;
  online_cfg.link_capacity = 400.0;  // wider pipes on the synthetic core
  std::vector<sofe::bench::DistSweep> sweeps{
      sofe::bench::run_dist_ksweep(topo, cfg, online_cfg)};

  if (json) sofe::bench::write_dist_json("fig10_inet_dist", sweeps, smoke, "BENCH_dist.json");
  return sofe::bench::dist_sweeps_identical(sweeps) ? 0 : 1;
}
