// Capacity-constrained admission control sweep (DESIGN.md §14).
//
// Sweeps offered load (per-destination-stream demand against a fixed link
// capacity) across the admission policies — greedy, threshold-price,
// reject-costliest — on the paper's SoftLayer testbed with the ledger in
// ENFORCED mode, reporting what the paper's soft-pricing runs cannot: the
// accept rate, the demand turned away, and the utilization the hard gate
// holds the network at.  Every cell runs the sequential driver as the
// determinism reference and re-runs the identical stream through the
// epoch-pipelined service at each worker count, exiting nonzero if ANY
// accept/reject or cost series diverges bitwise — the same guard the §10
// pipeline bench applies, extended to the admission series — or if an
// enforced-mode run ever reports an overloaded link (the invariant
// LoadLedger::can_admit makes provable).
//
// Flags:
//   --smoke  tiny instance (CI: the bench_admission_smoke ctest entry, in
//            the TSan cell too); the JSON carries "smoke": true
//   --json   additionally write the measurements to BENCH_admission.json

#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sofe/online/pipeline.hpp"
#include "sofe/online/stream.hpp"

namespace {

using sofe::online::OnlineConfig;
using sofe::online::OnlineResult;

// The §14 determinism surface: cost series, accept/reject series, and every
// admission statistic, bitwise.  (Timing fields are excluded, as always.)
bool admission_series_identical(const OnlineResult& a, const OnlineResult& b) {
  if (a.accumulative_cost.size() != b.accumulative_cost.size()) return false;
  for (std::size_t i = 0; i < a.accumulative_cost.size(); ++i) {
    if (a.accumulative_cost[i] != b.accumulative_cost[i]) return false;  // bitwise
    if (a.per_request_cost[i] != b.per_request_cost[i]) return false;
  }
  if (a.accepted.size() != b.accepted.size()) return false;
  for (std::size_t i = 0; i < a.accepted.size(); ++i) {
    if (a.accepted[i] != b.accepted[i]) return false;
    if (a.decision_utilization[i] != b.decision_utilization[i]) return false;
  }
  return a.infeasible_requests == b.infeasible_requests &&
         a.rejected_requests == b.rejected_requests &&
         a.rejected_demand_mbps == b.rejected_demand_mbps &&
         a.accept_rate == b.accept_rate && a.overloaded_links == b.overloaded_links &&
         a.max_link_utilization == b.max_link_utilization &&
         a.mean_link_utilization == b.mean_link_utilization &&
         a.max_host_utilization == b.max_host_utilization &&
         a.mean_host_utilization == b.mean_host_utilization;
}

unsigned hardware_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<int> sweep_worker_counts() {
  const unsigned top = std::max(2u, hardware_concurrency());
  std::vector<int> counts;
  for (unsigned w = 1; w <= top; w *= 2) counts.push_back(static_cast<int>(w));
  if (static_cast<unsigned>(counts.back()) != top) counts.push_back(static_cast<int>(top));
  return counts;
}

// One (offered load, policy) cell: the sequential reference plus its
// pipeline re-runs.
struct SweepPoint {
  double demand_mbps = 0.0;
  std::string policy;
  double accept_rate = 0.0;
  int rejected = 0;
  int infeasible = 0;
  double rejected_demand_mbps = 0.0;
  double max_link_utilization = 0.0;
  double mean_link_utilization = 0.0;
  double max_host_utilization = 0.0;
  double mean_host_utilization = 0.0;
  double final_cost = 0.0;
  std::size_t overloaded = 0;  // must be 0 in enforced mode
  bool identical = true;       // pipeline series bitwise == sequential, all W
};

SweepPoint run_cell(const sofe::topology::Topology& topo, OnlineConfig cfg,
                    double demand, const std::string& policy,
                    const std::vector<int>& worker_counts) {
  cfg.demand_mbps = demand;
  cfg.admission = policy;
  SweepPoint pt;
  pt.demand_mbps = demand;
  pt.policy = policy;

  auto solver = sofe::api::make_solver("sofda");
  const OnlineResult ref = simulate(topo, cfg, *solver);
  pt.accept_rate = ref.accept_rate;
  pt.rejected = ref.rejected_requests;
  pt.infeasible = ref.infeasible_requests;
  pt.rejected_demand_mbps = ref.rejected_demand_mbps;
  pt.max_link_utilization = ref.max_link_utilization;
  pt.mean_link_utilization = ref.mean_link_utilization;
  pt.max_host_utilization = ref.max_host_utilization;
  pt.mean_host_utilization = ref.mean_host_utilization;
  pt.final_cost = ref.accumulative_cost.empty() ? 0.0 : ref.accumulative_cost.back();
  pt.overloaded = ref.overloaded_links;

  for (const int workers : worker_counts) {
    sofe::online::PipelineOptions popt;
    popt.workers = workers;
    const OnlineResult got = sofe::online::serve_pipelined(topo, cfg, "sofda", {}, popt);
    if (!admission_series_identical(ref, got)) {
      pt.identical = false;
      std::cerr << "ERROR: pipeline diverged from sequential (policy=" << policy
                << ", demand=" << demand << " Mb/s, workers=" << workers << ")\n";
    }
    if (got.overloaded_links != 0) {
      pt.overloaded = got.overloaded_links;
      std::cerr << "ERROR: enforced-mode run reports " << got.overloaded_links
                << " overloaded links (policy=" << policy << ", workers=" << workers << ")\n";
    }
  }
  return pt;
}

void print_sweep(const std::string& title, const std::vector<SweepPoint>& points) {
  std::cout << "\n" << title << "\n";
  sofe::util::Table table({"demand Mb/s", "policy", "accept", "rej", "inf",
                           "rej Mb/s", "max util", "mean util", "max host", "cost",
                           "overl", "vs seq"});
  for (const auto& pt : points) {
    table.add_row({sofe::util::Table::num(pt.demand_mbps, 1), pt.policy,
                   sofe::util::Table::num(pt.accept_rate, 3), std::to_string(pt.rejected),
                   std::to_string(pt.infeasible),
                   sofe::util::Table::num(pt.rejected_demand_mbps, 1),
                   sofe::util::Table::num(pt.max_link_utilization, 3),
                   sofe::util::Table::num(pt.mean_link_utilization, 3),
                   sofe::util::Table::num(pt.max_host_utilization, 3),
                   sofe::util::Table::num(pt.final_cost, 2), std::to_string(pt.overloaded),
                   pt.identical ? "bit-identical" : "DIVERGED"});
  }
  table.print();
  std::cout << "(enforced capacity: overl must be 0 at every load; accept rate falls as\n"
            << " offered load rises because the hard gate, not the price, says no)\n";
}

void write_json(const std::vector<SweepPoint>& points, bool smoke, const char* path) {
  sofe::bench::BenchJsonWriter writer("admission", smoke);
  std::ostringstream& out = writer.body();
  out << ",\"hardware_concurrency\":" << hardware_concurrency() << ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    out << (i ? "," : "") << "{\"demand_mbps\":" << pt.demand_mbps << ",\"policy\":\""
        << pt.policy << "\",\"accept_rate\":" << pt.accept_rate
        << ",\"rejected\":" << pt.rejected << ",\"infeasible\":" << pt.infeasible
        << ",\"rejected_demand_mbps\":" << pt.rejected_demand_mbps
        << ",\"max_link_utilization\":" << pt.max_link_utilization
        << ",\"mean_link_utilization\":" << pt.mean_link_utilization
        << ",\"max_host_utilization\":" << pt.max_host_utilization
        << ",\"mean_host_utilization\":" << pt.mean_host_utilization
        << ",\"final_cost\":" << pt.final_cost << ",\"overloaded_links\":" << pt.overloaded
        << ",\"bit_identical\":" << (pt.identical ? "true" : "false") << "}";
  }
  out << "]";
  writer.finish(path);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::cout << (smoke ? "=== Admission control (smoke): offered load x policy ===\n"
                      : "=== Admission control: offered load x policy, SoftLayer ===\n");

  // The capacity-bound scenario: small link budget so rising per-stream
  // demand actually saturates links mid-stream, departures churning room
  // back (the regime where the policies differ).
  OnlineConfig cfg;
  cfg.requests = smoke ? 10 : 40;
  cfg.min_destinations = smoke ? 2 : 6;
  cfg.max_destinations = smoke ? 4 : 10;
  cfg.min_sources = 2;
  cfg.max_sources = 3;
  cfg.chain_length = 2;
  cfg.vms_per_dc = smoke ? 2 : 4;
  cfg.link_capacity = smoke ? 20.0 : 100.0;
  cfg.host_capacity = smoke ? 4.0 : 8.0;
  cfg.holding_arrivals = smoke ? 4 : 10;
  cfg.epoch_size = 4;
  cfg.seed = 12;

  const std::vector<double> demands =
      smoke ? std::vector<double>{2.0, 5.0} : std::vector<double>{2.0, 5.0, 10.0, 20.0};
  const std::vector<std::string> policies{"greedy", "threshold-price,theta=1.5",
                                          "reject-costliest,budget=250"};
  const std::vector<int> workers = smoke ? std::vector<int>{1, 2} : sweep_worker_counts();

  std::vector<SweepPoint> points;
  for (const double demand : demands) {
    for (const auto& policy : policies) {
      points.push_back(run_cell(sofe::topology::softlayer(), cfg, demand, policy, workers));
    }
  }
  print_sweep(smoke ? "offered load x policy (smoke)" : "offered load x policy", points);

  if (json) write_json(points, smoke, "BENCH_admission.json");

  for (const auto& pt : points) {
    if (!pt.identical || pt.overloaded != 0) return 1;
  }
  return 0;
}
