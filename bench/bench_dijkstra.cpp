// Microbenchmark for the CSR + ShortestPathEngine refactor: single-source,
// multi-source, and metric-closure construction on Cogent- and Inet-scale
// topologies, against a faithful copy of the pre-refactor implementation
// (per-call allocation, vector<vector<Arc>> adjacency, std::priority_queue).
//
//   ./bench_dijkstra                      # all cases
//   ./bench_dijkstra --benchmark_filter=MetricClosure
//
// The acceptance bar for the refactor is >= 1.5x on metric-closure
// construction for a >= 1000-node topology (BM_MetricClosure_* / inet).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "sofe/graph/dijkstra.hpp"
#include "sofe/graph/metric_closure.hpp"
#include "sofe/graph/shortest_path_engine.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/rng.hpp"

namespace {

using namespace sofe;
using graph::Cost;
using graph::Graph;
using graph::NodeId;
using graph::ShortestPathTree;

// ------------------------------------------------------------------ legacy --
// Pre-refactor Dijkstra, kept verbatim as the baseline under measurement:
// fresh dist/parent/heap allocations per call, adjacency via neighbors()
// with an Arc -> edges_ indirection per relaxation.

struct LegacyHeapItem {
  Cost dist;
  NodeId node;
  bool operator>(const LegacyHeapItem& o) const noexcept {
    if (dist != o.dist) return dist > o.dist;
    return node > o.node;
  }
};

ShortestPathTree legacy_dijkstra(const Graph& g, NodeId source) {
  const auto n = static_cast<std::size_t>(g.node_count());
  ShortestPathTree t;
  t.source = source;
  t.dist.assign(n, graph::kInfiniteCost);
  t.parent.assign(n, graph::kInvalidNode);
  t.parent_edge.assign(n, graph::kInvalidEdge);

  std::priority_queue<LegacyHeapItem, std::vector<LegacyHeapItem>, std::greater<>> heap;
  t.dist[static_cast<std::size_t>(source)] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > t.dist[static_cast<std::size_t>(u)]) continue;
    for (const graph::Arc& a : g.neighbors(u)) {
      const Cost nd = d + g.edge(a.edge).cost;
      auto& dv = t.dist[static_cast<std::size_t>(a.to)];
      if (nd < dv) {
        dv = nd;
        t.parent[static_cast<std::size_t>(a.to)] = u;
        t.parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
        heap.push({nd, a.to});
      }
    }
  }
  return t;
}

graph::VoronoiPartition legacy_multi_source(const Graph& g, std::vector<NodeId> seeds) {
  const auto n = static_cast<std::size_t>(g.node_count());
  graph::VoronoiPartition p;
  p.dist.assign(n, graph::kInfiniteCost);
  p.owner.assign(n, graph::kInvalidNode);
  p.parent.assign(n, graph::kInvalidNode);
  p.parent_edge.assign(n, graph::kInvalidEdge);
  std::priority_queue<LegacyHeapItem, std::vector<LegacyHeapItem>, std::greater<>> heap;
  std::sort(seeds.begin(), seeds.end());
  for (NodeId s : seeds) {
    auto& d = p.dist[static_cast<std::size_t>(s)];
    if (d == 0.0) continue;
    d = 0.0;
    p.owner[static_cast<std::size_t>(s)] = s;
    heap.push({0.0, s});
  }
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > p.dist[static_cast<std::size_t>(u)]) continue;
    for (const graph::Arc& a : g.neighbors(u)) {
      const Cost nd = d + g.edge(a.edge).cost;
      auto& dv = p.dist[static_cast<std::size_t>(a.to)];
      if (nd < dv) {
        dv = nd;
        p.owner[static_cast<std::size_t>(a.to)] = p.owner[static_cast<std::size_t>(u)];
        p.parent[static_cast<std::size_t>(a.to)] = u;
        p.parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
        heap.push({nd, a.to});
      }
    }
  }
  return p;
}

// ---------------------------------------------------------------- fixtures --

const Graph& inet_graph() {
  static const topology::Topology topo = topology::inet(5000, 10000, 2000, /*seed=*/7);
  return topo.g;
}

const Graph& cogent_graph() {
  static const topology::Topology topo = topology::cogent();
  return topo.g;
}

// A SOFDA-shaped closure workload on a >= 1000-node topology: hubs are the
// VMs (5 per data center, attached by zero-cost taps exactly as
// topology::make_problem and the online simulator attach them) plus the
// candidate sources.  This is the hub set every solver layer actually
// builds closures over; the tap-derivation path makes it one Dijkstra per
// distinct DC host instead of one per VM.
struct SofdaHubCase {
  Graph g;
  std::vector<NodeId> hubs;
};

const SofdaHubCase& inet_sofda_case() {
  static const SofdaHubCase c = [] {
    SofdaHubCase out;
    const topology::Topology topo = topology::inet(1000, 3000, 200, /*seed=*/9);
    out.g = topo.g;
    util::Rng rng(17);
    const auto dc_pick = rng.sample_without_replacement(topo.dc_nodes.size(), 20);
    for (std::size_t d : dc_pick) {
      for (int i = 0; i < 5; ++i) {  // vms_per_dc = 5, as in OnlineConfig
        const NodeId vm = out.g.add_node();
        out.g.add_edge(vm, topo.dc_nodes[d], 0.0);
        out.hubs.push_back(vm);
      }
    }
    const auto src_pick = rng.sample_without_replacement(
        static_cast<std::size_t>(topo.g.node_count()), 14);
    for (std::size_t s : src_pick) out.hubs.push_back(static_cast<NodeId>(s));
    return out;
  }();
  return c;
}

std::vector<NodeId> pick_hubs(const Graph& g, std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<NodeId> hubs;
  hubs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    hubs.push_back(static_cast<NodeId>(rng.index(static_cast<std::size_t>(g.node_count()))));
  }
  return hubs;
}

// -------------------------------------------------------------- benchmarks --

void BM_SingleSource_Legacy(benchmark::State& state, const Graph& g) {
  NodeId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy_dijkstra(g, s));
    s = (s + 1) % g.node_count();
  }
}

void BM_SingleSource_Engine(benchmark::State& state, const Graph& g) {
  graph::ShortestPathEngine engine(g);
  NodeId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(s));
    s = (s + 1) % g.node_count();
  }
}

void BM_MultiSource_Legacy(benchmark::State& state, const Graph& g) {
  const auto seeds = pick_hubs(g, 64, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy_multi_source(g, seeds));
  }
}

void BM_MultiSource_Engine(benchmark::State& state, const Graph& g) {
  const auto seeds = pick_hubs(g, 64, 11);
  graph::ShortestPathEngine engine(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_multi(seeds));
  }
}

void BM_MetricClosure_Legacy(benchmark::State& state, const Graph& g) {
  const auto hubs = pick_hubs(g, static_cast<std::size_t>(state.range(0)), 13);
  for (auto _ : state) {
    // The pre-refactor MetricClosure: one legacy Dijkstra per unique hub.
    std::vector<ShortestPathTree> trees;
    trees.reserve(hubs.size());
    std::vector<bool> seen(static_cast<std::size_t>(g.node_count()), false);
    for (NodeId h : hubs) {
      if (seen[static_cast<std::size_t>(h)]) continue;
      seen[static_cast<std::size_t>(h)] = true;
      trees.push_back(legacy_dijkstra(g, h));
    }
    benchmark::DoNotOptimize(trees);
  }
}

void BM_MetricClosure_Engine(benchmark::State& state, const Graph& g) {
  const auto hubs = pick_hubs(g, static_cast<std::size_t>(state.range(0)), 13);
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    graph::MetricClosure closure(g, hubs, threads);
    benchmark::DoNotOptimize(closure);
  }
}

void BM_MetricClosureSofda_Legacy(benchmark::State& state) {
  const SofdaHubCase& c = inet_sofda_case();
  for (auto _ : state) {
    // Pre-refactor behavior: one full Dijkstra per unique hub, taps or not.
    std::vector<ShortestPathTree> trees;
    trees.reserve(c.hubs.size());
    std::vector<bool> seen(static_cast<std::size_t>(c.g.node_count()), false);
    for (NodeId h : c.hubs) {
      if (seen[static_cast<std::size_t>(h)]) continue;
      seen[static_cast<std::size_t>(h)] = true;
      trees.push_back(legacy_dijkstra(c.g, h));
    }
    benchmark::DoNotOptimize(trees);
  }
}

void BM_MetricClosureSofda_Engine(benchmark::State& state) {
  const SofdaHubCase& c = inet_sofda_case();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    graph::MetricClosure closure(c.g, c.hubs, threads);
    benchmark::DoNotOptimize(closure);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Force fixture construction outside timing.
  (void)inet_graph();
  (void)cogent_graph();
  (void)inet_sofda_case();

  benchmark::RegisterBenchmark("BM_SingleSource_Legacy/inet5000",
                               [](benchmark::State& s) { BM_SingleSource_Legacy(s, inet_graph()); });
  benchmark::RegisterBenchmark("BM_SingleSource_Engine/inet5000",
                               [](benchmark::State& s) { BM_SingleSource_Engine(s, inet_graph()); });
  benchmark::RegisterBenchmark("BM_SingleSource_Legacy/cogent",
                               [](benchmark::State& s) { BM_SingleSource_Legacy(s, cogent_graph()); });
  benchmark::RegisterBenchmark("BM_SingleSource_Engine/cogent",
                               [](benchmark::State& s) { BM_SingleSource_Engine(s, cogent_graph()); });
  benchmark::RegisterBenchmark("BM_MultiSource_Legacy/inet5000x64",
                               [](benchmark::State& s) { BM_MultiSource_Legacy(s, inet_graph()); });
  benchmark::RegisterBenchmark("BM_MultiSource_Engine/inet5000x64",
                               [](benchmark::State& s) { BM_MultiSource_Engine(s, inet_graph()); });
  benchmark::RegisterBenchmark("BM_MetricClosure_Legacy/inet5000",
                               [](benchmark::State& s) { BM_MetricClosure_Legacy(s, inet_graph()); })
      ->Arg(64);
  benchmark::RegisterBenchmark(
      "BM_MetricClosure_Engine/inet5000",
      [](benchmark::State& s) { BM_MetricClosure_Engine(s, inet_graph()); })
      ->Args({64, 1})
      ->Args({64, 2})
      ->Args({64, 4});
  benchmark::RegisterBenchmark("BM_MetricClosureSofda_Legacy/inet1000_vmtaps",
                               [](benchmark::State& s) { BM_MetricClosureSofda_Legacy(s); });
  benchmark::RegisterBenchmark("BM_MetricClosureSofda_Engine/inet1000_vmtaps",
                               [](benchmark::State& s) { BM_MetricClosureSofda_Engine(s); })
      ->Arg(1)
      ->Arg(4);
  benchmark::RegisterBenchmark("BM_MetricClosure_Legacy/cogent",
                               [](benchmark::State& s) { BM_MetricClosure_Legacy(s, cogent_graph()); })
      ->Arg(40);
  benchmark::RegisterBenchmark(
      "BM_MetricClosure_Engine/cogent",
      [](benchmark::State& s) { BM_MetricClosure_Engine(s, cogent_graph()); })
      ->Args({40, 1});

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
