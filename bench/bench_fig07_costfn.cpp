// Fig. 7: the Fortz-Thorup link/VM cost function with capacity p = 1.
// Prints the cost at sampled loads plus the piecewise breakpoints so the
// plotted curve can be reproduced exactly.

#include <iostream>

#include "sofe/costmodel/fortz_thorup.hpp"
#include "sofe/util/table.hpp"

int main() {
  std::cout << "=== Fig. 7: convex load cost (Section VII-B), capacity p = 1 ===\n";
  sofe::util::Table table({"load", "cost", "slope"});
  for (double l = 0.0; l <= 1.2001; l += 0.05) {
    table.add_row({sofe::util::Table::num(l, 2),
                   sofe::util::Table::num(sofe::costmodel::fortz_thorup(l, 1.0), 4),
                   sofe::util::Table::num(sofe::costmodel::fortz_thorup_slope(l, 1.0), 0)});
  }
  table.print();
  std::cout << "breakpoints: 1/3, 2/3, 9/10, 1, 11/10 (continuous; the paper's\n"
               "printed 14318/3 intercept is corrected to Fortz-Thorup's 16318/3)\n";
  return 0;
}
