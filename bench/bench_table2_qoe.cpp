// Table II: streaming QoE on the 14-node / 20-link experimental SDN
// (Fig. 13): average startup latency and total re-buffering time of a
// 137 s, 8 Mb/s H.264 stream processed by a transcoder + watermarker chain,
// for SOFDA / eNEMP / eST under the "Ours" (HP OpenFlow testbed) and
// "Emulab" calibration profiles.
//
// Harness (DESIGN.md §3): per trial, every link draws an available
// bandwidth in [4.5, 9] Mb/s; the embedding prices links by the
// Fortz-Thorup cost of carrying the stream at that capacity (the congestion
// the paper emulates), then the stream plays over the same capacities.
// Expected shape: SOFDA lowest on both metrics, eNEMP second, eST third.

#include <iostream>

#include "bench_util.hpp"
#include "sofe/qoe/streaming.hpp"

namespace {

struct Row {
  double startup_ours = 0.0, startup_emulab = 0.0;
  double rebuffer_ours = 0.0, rebuffer_emulab = 0.0;
  int trials = 0;
};

}  // namespace

int main() {
  const auto topo = sofe::topology::testbed14();
  const int trials = 40;
  std::map<std::string, Row> rows;
  // Table II compares SOFDA/eNEMP/eST (no plain ST).
  std::map<std::string, std::unique_ptr<sofe::api::Solver>> solvers;
  for (const auto& [display, registered] : sofe::bench::comparison_solvers()) {
    if (display != "ST") solvers[display] = sofe::api::make_solver(registered);
  }

  for (int profile = 0; profile < 2; ++profile) {
    auto q = profile == 0 ? sofe::qoe::profile_ours() : sofe::qoe::profile_emulab();
    q.physical_edges = topo.g.edge_count();
    for (int t = 0; t < trials; ++t) {
      sofe::topology::ProblemConfig cfg;
      cfg.num_vms = 10;       // "each node can support one VNF"; 10 candidate slots
      cfg.num_sources = 2;    // two Youtube-connected video sources
      cfg.num_destinations = 4;
      cfg.chain_length = 2;   // transcoder + watermarker
      cfg.seed = 300 + static_cast<std::uint64_t>(t);
      cfg.randomize_link_usage = false;
      auto p = sofe::topology::make_problem(topo, cfg);
      sofe::util::Rng rng(static_cast<std::uint64_t>(t) * 31 + profile);
      const auto caps = sofe::qoe::price_links_by_capacity(p, topo.g.edge_count(), q, rng);

      struct Algo {
        const char* name;
        sofe::core::ServiceForest forest;
      };
      Algo algos[] = {
          {"SOFDA", solvers.at("SOFDA")->solve(p)},
          {"eNEMP", solvers.at("eNEMP")->solve(p)},
          {"eST", solvers.at("eST")->solve(p)},
      };
      bool all_ok = true;
      for (const auto& a : algos) all_ok = all_ok && !a.forest.empty();
      if (!all_ok) continue;
      for (const auto& a : algos) {
        const auto r = sofe::qoe::evaluate_streaming_fixed(p, a.forest, q, caps);
        auto& row = rows[a.name];
        if (profile == 0) {
          row.startup_ours += r.avg_startup_latency_s;
          row.rebuffer_ours += r.avg_rebuffering_s;
          ++row.trials;  // counted once (profile 0)
        } else {
          row.startup_emulab += r.avg_startup_latency_s;
          row.rebuffer_emulab += r.avg_rebuffering_s;
        }
      }
    }
  }

  std::cout << "=== Table II: streaming QoE on the Fig. 13 testbed (" << trials
            << " capacity draws) ===\n";
  sofe::util::Table table({"Algorithm", "Startup (Ours)", "Startup (Emulab)",
                           "Re-buffering (Ours)", "Re-buffering (Emulab)"});
  for (const char* name : {"SOFDA", "eNEMP", "eST"}) {
    const Row& r = rows[name];
    const double n = r.trials > 0 ? r.trials : 1;
    table.add_row({name, sofe::util::Table::num(r.startup_ours / n, 1) + " s",
                   sofe::util::Table::num(r.startup_emulab / n, 1) + " s",
                   sofe::util::Table::num(r.rebuffer_ours / n, 1) + " s",
                   sofe::util::Table::num(r.rebuffer_emulab / n, 1) + " s"});
  }
  table.print();
  std::cout << "(shape check: SOFDA lowest startup latency and re-buffering)\n";
  return 0;
}
