// Fig. 9: one-time deployment cost on the Cogent backbone (190 nodes,
// 260 links, 40 DCs).  Same sweeps as Fig. 8, no exact series (the paper
// only ran CPLEX on SoftLayer).
//
// Expected shape: larger network => larger SOFDA margins, because more
// candidate nodes/links give the forest more room to beat a single tree.
//
// PR 7 adds the multi-controller k-sweep panel (DESIGN.md §11): the sharded
// closure build at k ∈ {1, 2, 4, 8} controllers, reporting per-controller
// build time (expected to shrink with k), exchanged rows/bytes and protocol
// rounds, plus the online arrival loop driven through the "dist/k=<k>"
// session — every point asserted bitwise identical to the centralized
// "sofda" run (exit 1 on divergence).
//
// Flags:
//   --smoke   dist panel only, tiny arrival stream (the bench_dist_smoke
//             ctest entry); the JSON carries "smoke": true
//   --json    additionally write the k-sweep to BENCH_dist.json

#include <cstring>
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto topo = sofe::topology::cogent();
  if (!smoke) {
    std::cout << "=== Fig. 9: one-time deployment cost, Cogent ===\n";
    std::cout << "(defaults: |S|=14, |D|=6, |M|=25, |C|=3; mean over "
              << sofe::bench::seeds_per_cell() << " seeds)\n";
    sofe::bench::run_cost_figure(topo, /*with_exact=*/false, /*scale=*/1.0);
  } else {
    std::cout << "=== Fig. 9 (smoke): multi-controller k-sweep, Cogent ===\n";
  }

  sofe::topology::ProblemConfig cfg;  // paper defaults: 14/6/25, |C|=3
  cfg.seed = 9;
  sofe::online::OnlineConfig online_cfg;
  online_cfg.requests = smoke ? 4 : 16;
  online_cfg.min_destinations = 4;
  online_cfg.max_destinations = 6;
  online_cfg.min_sources = 2;
  online_cfg.max_sources = 3;
  online_cfg.seed = 9;
  std::vector<sofe::bench::DistSweep> sweeps{
      sofe::bench::run_dist_ksweep(topo, cfg, online_cfg)};

  if (json) sofe::bench::write_dist_json("fig09_cogent_dist", sweeps, smoke, "BENCH_dist.json");
  return sofe::bench::dist_sweeps_identical(sweeps) ? 0 : 1;
}
