// Fig. 9: one-time deployment cost on the Cogent backbone (190 nodes,
// 260 links, 40 DCs).  Same sweeps as Fig. 8, no exact series (the paper
// only ran CPLEX on SoftLayer).
//
// Expected shape: larger network => larger SOFDA margins, because more
// candidate nodes/links give the forest more room to beat a single tree.

#include <iostream>

#include "bench_util.hpp"

int main() {
  std::cout << "=== Fig. 9: one-time deployment cost, Cogent ===\n";
  std::cout << "(defaults: |S|=14, |D|=6, |M|=25, |C|=3; mean over "
            << sofe::bench::seeds_per_cell() << " seeds)\n";
  sofe::bench::run_cost_figure(sofe::topology::cogent(), /*with_exact=*/false,
                               /*scale=*/1.0);
  return 0;
}
