// Fig. 13 companion: failure drills on the paper's 14-node/20-link SDN
// testbed (plus SoftLayer in the full run) — scripted link failures swept
// over failure rate × migration budget, with every affected service forest
// recovered by the resilience engine (DESIGN.md §12).
//
// Per sweep point the harness reports recovery latency, migrated/dropped
// user counts, escalation rate and the solution-quality delta vs the
// from-scratch reference.  The budget-unbounded column doubles as the
// acceptance check: the engine must adopt the from-scratch re-embed at
// every event (chosen_cost bitwise == scratch_cost), and the whole drill —
// cost series AND recovery reports — must be bitwise identical between the
// warm incremental session and the cold recomputing reference driver, and
// across pipeline worker counts.  Any divergence exits 1, which the
// bench_resilience_smoke ctest entry fails loudly on.
//
// Flags:
//   --smoke   tiny instance (CI: one rate, budgets {0, unbounded}, workers
//             {1, 2}); the JSON carries "smoke": true
//   --json    additionally write the measurements to BENCH_resilience.json

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sofe/online/pipeline.hpp"
#include "sofe/online/simulator.hpp"

namespace {

using sofe::resilience::FailureEvent;
using sofe::resilience::FailurePlan;

struct DrillPoint {
  double failure_rate = 0.0;
  int budget = 0;  // max_moved_users; -1 = unbounded
  int failed_links = 0;
  int recoveries = 0;
  int escalations = 0;
  int rerouted_segments = 0;
  int moved_users = 0;
  int dropped_users = 0;
  int infeasible_requests = 0;
  double mean_recovery_ms = 0.0;
  double max_recovery_ms = 0.0;
  double final_cost = 0.0;
  /// Mean chosen/scratch cost ratio over events where both are finite —
  /// the quality delta a bounded budget trades for fewer moved users.
  double quality_vs_scratch = 1.0;
  bool unbounded_matches_scratch = true;  // budget < 0 only
  bool identical_to_reference = true;     // budget < 0 only
};

struct PipelinePoint {
  int workers = 0;
  bool identical = true;
  double seconds = 0.0;
};

struct Panel {
  std::string name;
  int requests = 0;
  std::vector<DrillPoint> points;
  std::vector<PipelinePoint> pipeline;
};

/// Deterministic plan: round(rate · links) distinct links, failures spread
/// over the middle of the stream, each healing requests/5 arrivals later
/// (or never, when that falls past the end).
FailurePlan make_plan(const sofe::topology::Topology& topo, int requests, double rate,
                      std::uint64_t seed) {
  const int links = static_cast<int>(topo.g.edge_count());
  const int n_fail = std::min(links, std::max(1, static_cast<int>(std::lround(rate * links))));
  sofe::util::Rng rng(seed);
  const auto picks = rng.sample_without_replacement(static_cast<std::size_t>(links),
                                                    static_cast<std::size_t>(n_fail));
  FailurePlan plan;
  const int start = std::max(1, requests / 4);
  const int span = std::max(1, requests / 2);
  const int heal_after = std::max(2, requests / 5);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    FailureEvent ev;
    ev.target = FailureEvent::Target::kLink;
    ev.id = static_cast<std::int32_t>(picks[i]);
    ev.fail_at = start + static_cast<int>((i * static_cast<std::size_t>(span)) / picks.size());
    const int heal = ev.fail_at + heal_after;
    ev.heal_at = heal < requests ? heal : -1;
    plan.events.push_back(ev);
  }
  return plan;
}

bool series_identical(const sofe::online::OnlineResult& a, const sofe::online::OnlineResult& b) {
  if (a.accumulative_cost.size() != b.accumulative_cost.size()) return false;
  for (std::size_t i = 0; i < a.accumulative_cost.size(); ++i) {
    if (a.accumulative_cost[i] != b.accumulative_cost[i]) return false;  // bitwise
    if (a.per_request_cost[i] != b.per_request_cost[i]) return false;
  }
  return a.infeasible_requests == b.infeasible_requests &&
         a.overloaded_links == b.overloaded_links;
}

/// Recovery reports bitwise identical, wall time excluded.
bool recoveries_identical(const sofe::online::OnlineResult& a,
                          const sofe::online::OnlineResult& b) {
  if (a.recoveries.size() != b.recoveries.size()) return false;
  for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
    const auto& x = a.recoveries[i];
    const auto& y = b.recoveries[i];
    if (x.epoch_first != y.epoch_first || x.slot != y.slot ||
        x.rerouted_segments != y.rerouted_segments || x.moved_users != y.moved_users ||
        x.dropped_users != y.dropped_users || x.escalated != y.escalated ||
        x.repaired_cost != y.repaired_cost || x.scratch_cost != y.scratch_cost ||
        x.chosen_cost != y.chosen_cost) {
      return false;
    }
  }
  return true;
}

DrillPoint run_point(const sofe::topology::Topology& topo, sofe::online::OnlineConfig cfg,
                     const FailurePlan& plan, double rate, int budget) {
  cfg.failures = &plan;
  cfg.recovery.max_moved_users = budget;

  DrillPoint pt;
  pt.failure_rate = rate;
  pt.budget = budget;
  pt.failed_links = static_cast<int>(plan.events.size());

  auto warm = sofe::api::make_solver("sofda");
  const auto r = simulate(topo, cfg, *warm);

  pt.recoveries = static_cast<int>(r.recoveries.size());
  pt.infeasible_requests = r.infeasible_requests;
  pt.final_cost = r.accumulative_cost.empty() ? 0.0 : r.accumulative_cost.back();
  double quality_sum = 0.0;
  int quality_n = 0;
  for (const auto& rep : r.recoveries) {
    pt.escalations += rep.escalated ? 1 : 0;
    pt.rerouted_segments += rep.rerouted_segments;
    pt.moved_users += rep.moved_users;
    pt.dropped_users += rep.dropped_users;
    pt.mean_recovery_ms += rep.seconds * 1e3;
    pt.max_recovery_ms = std::max(pt.max_recovery_ms, rep.seconds * 1e3);
    if (rep.chosen_cost < sofe::graph::kInfiniteCost &&
        rep.scratch_cost < sofe::graph::kInfiniteCost && rep.scratch_cost > 0.0) {
      quality_sum += rep.chosen_cost / rep.scratch_cost;
      ++quality_n;
    }
    if (budget < 0 && rep.scratch_cost < sofe::graph::kInfiniteCost &&
        rep.chosen_cost != rep.scratch_cost) {
      pt.unbounded_matches_scratch = false;
    }
  }
  if (pt.recoveries > 0) pt.mean_recovery_ms /= pt.recoveries;
  if (quality_n > 0) pt.quality_vs_scratch = quality_sum / quality_n;

  if (budget < 0) {
    // The from-scratch reference drill: per-arrival Problem copies and a
    // cold session that rebuilds closures and re-prices every chain.  The
    // warm incremental drill above must reproduce it bit for bit —
    // recoveries included — or the resilience layer leaked session state
    // into results.
    auto ref_cfg = cfg;
    ref_cfg.copy_problems = true;
    sofe::api::SolverOptions cold_opt;
    cold_opt.incremental = false;
    cold_opt.incremental_pricing = false;
    auto cold = sofe::api::make_solver("sofda", cold_opt);
    const auto reference = simulate(topo, ref_cfg, *cold);
    pt.identical_to_reference = series_identical(r, reference) && recoveries_identical(r, reference);
    if (!pt.unbounded_matches_scratch) {
      std::cerr << "ERROR: unbounded budget kept a repair over a feasible "
                   "from-scratch re-embed (rate "
                << rate << ")\n";
    }
    if (!pt.identical_to_reference) {
      std::cerr << "ERROR: unbounded drill diverges from the from-scratch "
                   "reference driver (rate "
                << rate << ")\n";
    }
  }
  return pt;
}

Panel run_panel(const char* title, const sofe::topology::Topology& topo,
                const sofe::online::OnlineConfig& cfg, const std::vector<double>& rates,
                const std::vector<int>& budgets, const std::vector<int>& worker_counts,
                std::uint64_t plan_seed) {
  std::cout << "\n" << title << " (" << cfg.requests << " arrivals)\n";
  Panel panel;
  panel.name = title;
  panel.requests = cfg.requests;

  sofe::util::Table table({"rate", "budget", "fails", "recov", "escal", "moved", "drop",
                           "reroute", "mean_ms", "quality", "final_cost"});
  for (const double rate : rates) {
    const FailurePlan plan = make_plan(topo, cfg.requests, rate, plan_seed);
    for (const int budget : budgets) {
      DrillPoint pt = run_point(topo, cfg, plan, rate, budget);
      table.add_row({sofe::util::Table::num(rate, 2),
                     budget < 0 ? "inf" : std::to_string(budget),
                     std::to_string(pt.failed_links), std::to_string(pt.recoveries),
                     std::to_string(pt.escalations), std::to_string(pt.moved_users),
                     std::to_string(pt.dropped_users), std::to_string(pt.rerouted_segments),
                     sofe::util::Table::num(pt.mean_recovery_ms, 2),
                     sofe::util::Table::num(pt.quality_vs_scratch, 4),
                     sofe::util::Table::num(pt.final_cost, 0)});
      panel.points.push_back(pt);
    }
  }
  table.print();

  // Pipeline cross-check at the unbounded budget: the drill runs inside
  // epoch publication, so every worker count must reproduce the sequential
  // driver's series and reports bit for bit.
  {
    auto drill_cfg = cfg;
    const FailurePlan plan = make_plan(topo, cfg.requests, rates.front(), plan_seed);
    drill_cfg.failures = &plan;
    drill_cfg.epoch_size = std::max(2, cfg.requests / 4);
    auto solver = sofe::api::make_solver("sofda");
    const auto reference = simulate(topo, drill_cfg, *solver);
    for (const int workers : worker_counts) {
      sofe::online::PipelineOptions popt;
      popt.workers = workers;
      sofe::util::Stopwatch watch;
      const auto got = serve_pipelined(topo, drill_cfg, "sofda", {}, popt);
      PipelinePoint pp;
      pp.workers = workers;
      pp.seconds = watch.seconds();
      pp.identical = series_identical(got, reference) && recoveries_identical(got, reference);
      if (!pp.identical) {
        std::cerr << "ERROR: pipelined drill at " << workers
                  << " workers diverged from the sequential driver\n";
      }
      std::cout << "pipeline workers=" << workers << ": "
                << sofe::util::Table::num(pp.seconds, 3) << "s, "
                << (pp.identical ? "bit-identical" : "DIVERGED") << "\n";
      panel.pipeline.push_back(pp);
    }
  }
  return panel;
}

void write_json(const std::vector<Panel>& panels, bool smoke, const char* path) {
  sofe::bench::BenchJsonWriter writer("fig13_failures", smoke);
  std::ostringstream& out = writer.body();
  out << ",\"solver\":\"sofda\",\"panels\":[";
  for (std::size_t pi = 0; pi < panels.size(); ++pi) {
    const auto& panel = panels[pi];
    out << (pi ? "," : "") << "{\"name\":\"" << panel.name
        << "\",\"requests\":" << panel.requests << ",\"points\":[";
    for (std::size_t i = 0; i < panel.points.size(); ++i) {
      const auto& pt = panel.points[i];
      out << (i ? "," : "") << "{\"failure_rate\":" << pt.failure_rate
          << ",\"budget\":" << pt.budget << ",\"failed_links\":" << pt.failed_links
          << ",\"recoveries\":" << pt.recoveries << ",\"escalations\":" << pt.escalations
          << ",\"rerouted_segments\":" << pt.rerouted_segments
          << ",\"moved_users\":" << pt.moved_users << ",\"dropped_users\":" << pt.dropped_users
          << ",\"infeasible_requests\":" << pt.infeasible_requests
          << ",\"mean_recovery_ms\":" << pt.mean_recovery_ms
          << ",\"max_recovery_ms\":" << pt.max_recovery_ms
          << ",\"quality_vs_scratch\":" << pt.quality_vs_scratch
          << ",\"final_cost\":" << pt.final_cost << ",\"unbounded_matches_scratch\":"
          << (pt.unbounded_matches_scratch ? "true" : "false")
          << ",\"bit_identical_to_reference\":"
          << (pt.identical_to_reference ? "true" : "false") << "}";
    }
    out << "],\"pipeline\":[";
    for (std::size_t i = 0; i < panel.pipeline.size(); ++i) {
      const auto& pp = panel.pipeline[i];
      out << (i ? "," : "") << "{\"workers\":" << pp.workers << ",\"seconds\":" << pp.seconds
          << ",\"bit_identical\":" << (pp.identical ? "true" : "false") << "}";
    }
    out << "]}";
  }
  out << "]";
  writer.finish(path);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<Panel> panels;
  if (smoke) {
    std::cout << "=== Fig. 13 failure drill (smoke): testbed, rate x budget ===\n";
    sofe::online::OnlineConfig cfg;
    cfg.requests = 10;
    cfg.min_destinations = 2;
    cfg.max_destinations = 3;
    cfg.min_sources = 1;
    cfg.max_sources = 2;
    cfg.chain_length = 2;
    cfg.vms_per_dc = 1;
    cfg.seed = 17;
    panels.push_back(run_panel("Testbed (smoke)", sofe::topology::testbed14(), cfg,
                               /*rates=*/{0.1}, /*budgets=*/{0, -1},
                               /*worker_counts=*/{1, 2}, /*plan_seed=*/1713));
  } else {
    std::cout << "=== Fig. 13 failure drill: failure rate x migration budget ===\n";
    {
      sofe::online::OnlineConfig cfg;
      cfg.requests = 24;
      cfg.min_destinations = 2;
      cfg.max_destinations = 4;
      cfg.min_sources = 1;
      cfg.max_sources = 2;
      cfg.chain_length = 2;
      cfg.vms_per_dc = 1;
      cfg.seed = 17;
      panels.push_back(run_panel("(a) Testbed, 24 arrivals", sofe::topology::testbed14(), cfg,
                                 /*rates=*/{0.05, 0.1, 0.2}, /*budgets=*/{0, 1, 2, -1},
                                 /*worker_counts=*/{1, 2, 4}, /*plan_seed=*/1713));
    }
    {
      sofe::online::OnlineConfig cfg;
      cfg.requests = 20;
      cfg.min_destinations = 8;
      cfg.max_destinations = 12;
      cfg.min_sources = 4;
      cfg.max_sources = 6;
      cfg.chain_length = 3;
      cfg.seed = 12;
      panels.push_back(run_panel("(b) SoftLayer, 20 arrivals", sofe::topology::softlayer(), cfg,
                                 /*rates=*/{0.05, 0.1}, /*budgets=*/{0, 2, -1},
                                 /*worker_counts=*/{1, 2, 4}, /*plan_seed=*/4211));
    }
  }

  if (json) write_json(panels, smoke, "BENCH_resilience.json");

  for (const auto& panel : panels) {
    for (const auto& pt : panel.points) {
      // The acceptance gate: budget-unbounded recovery must BE the
      // from-scratch reference, bit for bit.
      if (!pt.unbounded_matches_scratch || !pt.identical_to_reference) return 1;
    }
    for (const auto& pp : panel.pipeline) {
      if (!pp.identical) return 1;
    }
  }
  return 0;
}
