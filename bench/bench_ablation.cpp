// Ablation bench (beyond the paper; DESIGN.md §4): quantifies the design
// choices SOFDA composes from —
//   (1) Steiner substrate choice (Mehlhorn / KMB / Takahashi-Matsuyama);
//   (2) k-stroll solver choice (cheapest-insertion+local-search vs exact DP);
//   (3) the pass-through shortening post-step;
//   (4) VNF-conflict traffic (how often Procedure 4 fires and which case);
//   (5) distributed-control message overhead vs controller count.

#include <iostream>

#include "sofe/api/registry.hpp"
#include "sofe/core/conflict.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/util/rng.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/stopwatch.hpp"
#include "sofe/util/table.hpp"

namespace {

using sofe::core::total_cost;

constexpr int kSeeds = 8;

sofe::core::Problem sample(std::uint64_t seed, int vms = 25) {
  sofe::topology::ProblemConfig cfg;
  cfg.num_vms = vms;
  cfg.seed = seed;
  static const auto topo = sofe::topology::softlayer();
  return sofe::topology::make_problem(topo, cfg);
}

void steiner_choice() {
  std::cout << "\n--- (1) Steiner substrate inside SOFDA (SoftLayer defaults) ---\n";
  struct Variant {
    const char* name;
    sofe::steiner::Algorithm algo;
  };
  const Variant variants[] = {
      {"Mehlhorn", sofe::steiner::Algorithm::kMehlhorn},
      {"KMB", sofe::steiner::Algorithm::kKmb},
      {"Takahashi-Matsuyama", sofe::steiner::Algorithm::kTakahashiMatsuyama},
  };
  sofe::util::Table table({"variant", "mean cost", "mean time (ms)"});
  for (const auto& v : variants) {
    sofe::api::SolverOptions opt;
    opt.steiner = v.algo;
    const auto solver = sofe::api::make_solver("sofda", opt);
    double cost = 0.0, ms = 0.0;
    int counted = 0;
    for (int s = 0; s < kSeeds; ++s) {
      const auto p = sample(700 + static_cast<std::uint64_t>(s));
      const auto f = solver->solve(p);
      ms += solver->report().total_seconds * 1e3;
      if (f.empty()) continue;
      cost += solver->report().total_cost;
      ++counted;
    }
    table.add_row({v.name, sofe::util::Table::num(cost / counted, 2),
                   sofe::util::Table::num(ms / kSeeds, 2)});
  }
  table.print();
}

void stroll_choice() {
  std::cout << "\n--- (2) k-stroll solver inside SOFDA (|M| = 12 so exact DP is cheap) ---\n";
  sofe::util::Table table({"variant", "mean cost", "mean time (ms)"});
  for (const char* name : {"sofda", "sofda/exact-stroll"}) {
    const auto solver = sofe::api::make_solver(name);
    double cost = 0.0, ms = 0.0;
    int counted = 0;
    for (int s = 0; s < kSeeds; ++s) {
      const auto p = sample(800 + static_cast<std::uint64_t>(s), /*vms=*/12);
      const auto f = solver->solve(p);
      ms += solver->report().total_seconds * 1e3;
      if (f.empty()) continue;
      cost += solver->report().total_cost;
      ++counted;
    }
    table.add_row({std::string(name) == "sofda" ? "cheapest insertion" : "exact DP",
                   sofe::util::Table::num(cost / counted, 3),
                   sofe::util::Table::num(ms / kSeeds, 2)});
  }
  table.print();
  std::cout << "(shape check: near-identical cost; insertion much cheaper at scale)\n";
}

void shorten_choice() {
  std::cout << "\n--- (3) pass-through shortening post-step ---\n";
  sofe::util::Table table({"variant", "mean cost"});
  for (const bool shorten : {true, false}) {
    sofe::api::SolverOptions opt;
    opt.shorten = shorten;
    const auto solver = sofe::api::make_solver("sofda", opt);
    double cost = 0.0;
    int counted = 0;
    for (int s = 0; s < kSeeds; ++s) {
      const auto p = sample(900 + static_cast<std::uint64_t>(s));
      const auto f = solver->solve(p);
      if (f.empty()) continue;
      cost += solver->report().total_cost;
      ++counted;
    }
    table.add_row({shorten ? "with shortening" : "without", sofe::util::Table::num(cost / counted, 3)});
  }
  table.print();
}

void conflict_traffic() {
  // Conflicts need chains that traverse shared VMs in *different* orders;
  // rings with far-apart sources produce exactly that (SoftLayer's dense
  // mesh lets every chain agree on the same cheap assignment, so organic
  // conflicts are rare there — which is itself a finding).
  std::cout << "\n--- (4) VNF-conflict resolution traffic (ring topology, opposing sources) ---\n";
  sofe::util::Table table({"|M|", "deployed", "case1", "case2", "case3", "requeued",
                           "dropped", "feasible"});
  const auto sofda_solver = sofe::api::make_solver("sofda");
  for (int vms : {4, 6, 10}) {
    sofe::core::SofdaStats agg;
    int feasible = 0;
    for (int s = 0; s < kSeeds * 4; ++s) {
      sofe::topology::ProblemConfig cfg;
      cfg.num_vms = vms;
      cfg.num_sources = 6;
      cfg.num_destinations = 8;
      cfg.chain_length = 3;
      cfg.setup_scale = 0.2;  // cheap VMs => many trees => overlap pressure
      cfg.seed = 1100 + static_cast<std::uint64_t>(s);
      const auto topo = sofe::topology::ring(24);
      const auto p = sofe::topology::make_problem(topo, cfg);
      const auto f = sofda_solver->solve(p);
      const auto& stats = sofda_solver->report().sofda;
      if (!f.empty() && sofe::core::is_feasible(p, f)) ++feasible;
      agg.deployed_chains += stats.deployed_chains;
      agg.conflicts.case1 += stats.conflicts.case1;
      agg.conflicts.case2 += stats.conflicts.case2;
      agg.conflicts.case3 += stats.conflicts.case3;
      agg.conflicts.requeued += stats.conflicts.requeued;
      agg.conflicts.dropped += stats.conflicts.dropped;
    }
    table.add_row({std::to_string(vms), std::to_string(agg.deployed_chains),
                   std::to_string(agg.conflicts.case1), std::to_string(agg.conflicts.case2),
                   std::to_string(agg.conflicts.case3), std::to_string(agg.conflicts.requeued),
                   std::to_string(agg.conflicts.dropped),
                   std::to_string(feasible) + "/" + std::to_string(kSeeds * 4)});
  }
  table.print();
  std::cout << "(finding: organic conflicts are rare — the auxiliary Steiner tree already\n"
               " avoids redundant chains; Procedure 4 is exercised adversarially below)\n";

  // Direct adversarial workload on the resolution machinery: random chains
  // crossing a shared VM pool in shuffled orders.
  std::cout << "\n--- (4b) Procedure 4 under adversarial crossing chains ---\n";
  sofe::util::Table t2({"chains", "case1", "case2", "case3", "requeued", "dropped",
                        "consistent"});
  for (int n_chains : {4, 8, 16}) {
    sofe::core::ConflictStats agg;
    int consistent = 0, total = 0;
    for (int s = 0; s < kSeeds; ++s) {
      // Complete-ish graph over 12 nodes; VMs everywhere.
      sofe::core::Problem p;
      p.network = sofe::core::Graph(12);
      for (sofe::core::NodeId u = 0; u < 12; ++u) {
        for (sofe::core::NodeId v = u + 1; v < 12; ++v) p.network.add_edge(u, v, 1.0);
      }
      p.node_cost.assign(12, 1.0);
      p.node_cost[0] = p.node_cost[1] = 0.0;
      p.is_vm.assign(12, 1);
      p.is_vm[0] = p.is_vm[1] = 0;
      p.sources = {0, 1};
      p.destinations = {};
      p.chain_length = 3;

      sofe::util::Rng rng(5000 + static_cast<std::uint64_t>(s) * 13 +
                          static_cast<std::uint64_t>(n_chains));
      sofe::core::ChainPool pool(p);
      for (int c = 0; c < n_chains; ++c) {
        std::vector<sofe::core::NodeId> vms{2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
        rng.shuffle(vms);
        sofe::core::DeployedChain chain;
        chain.source = p.sources[static_cast<std::size_t>(c % 2)];
        chain.nodes = {chain.source, vms[0], vms[1], vms[2]};
        chain.vnf_pos = {1, 2, 3};
        chain.last_vm = vms[2];
        pool.add(c, std::move(chain));
      }
      // Consistency: every committed chain agrees with the enabled map.
      const auto enabled = pool.enabled();
      bool ok = true;
      for (const auto& [id, chain] : pool.committed()) {
        (void)id;
        for (std::size_t j = 0; j < chain.vnf_pos.size(); ++j) {
          if (enabled.at(chain.nodes[chain.vnf_pos[j]]) != static_cast<int>(j) + 1) ok = false;
        }
      }
      consistent += ok ? 1 : 0;
      ++total;
      agg.case1 += pool.stats().case1;
      agg.case2 += pool.stats().case2;
      agg.case3 += pool.stats().case3;
      agg.requeued += pool.stats().requeued;
      agg.dropped += pool.stats().dropped;
    }
    t2.add_row({std::to_string(n_chains), std::to_string(agg.case1), std::to_string(agg.case2),
                std::to_string(agg.case3), std::to_string(agg.requeued),
                std::to_string(agg.dropped),
                std::to_string(consistent) + "/" + std::to_string(total)});
  }
  t2.print();
}

void distributed_overhead() {
  std::cout << "\n--- (5) multi-controller message overhead (Section VI) ---\n";
  sofe::util::Table table({"controllers", "messages", "payload items", "rounds", "cost vs central"});
  const auto p = sample(1234, 10);
  const auto central = sofe::api::make_solver("sofda");
  (void)central->solve(p);
  const double central_cost = central->report().total_cost;
  for (int k : {1, 2, 3, 4, 6, 8}) {
    const auto solver = sofe::api::make_solver("dist/k=" + std::to_string(k));
    (void)solver->solve(p);
    const auto& r = solver->report();
    table.add_row({std::to_string(k), std::to_string(r.messages),
                   std::to_string(r.payload_items), std::to_string(r.rounds),
                   sofe::util::Table::num(r.total_cost / central_cost, 4) + "x"});
  }
  table.print();
}

}  // namespace

int main() {
  std::cout << "=== Ablation: SOFDA design choices ===\n";
  steiner_choice();
  stroll_choice();
  shorten_choice();
  conflict_traffic();
  distributed_overhead();
  return 0;
}
