// Fig. 11: impact of the VM setup-cost multiplier (1x..9x) and chain length
// (|C| = 3..7) on (a) SOFDA's forest cost and (b) the average number of VMs
// SOFDA enables.
//
// Expected shape: cost grows with both knobs; the number of enabled VMs
// *falls* as setup cost rises (SOFDA consolidates) and grows with |C|
// (every chain needs |C| distinct VMs, shared across destinations).

#include <iostream>

#include "bench_util.hpp"

int main() {
  using sofe::bench::seeds_per_cell;
  const int seeds = seeds_per_cell();
  const auto topo = sofe::topology::softlayer();
  const std::vector<int> multipliers{1, 3, 5, 7, 9};
  const std::vector<int> chains{3, 4, 5, 6, 7};

  std::cout << "=== Fig. 11: setup-cost multiplier x chain length (SoftLayer, SOFDA) ===\n";
  std::cout << "(defaults: |S|=14, |D|=6, |M|=25; mean over " << seeds << " seeds)\n";

  const auto solver = sofe::api::make_solver("sofda");
  std::vector<std::vector<double>> cost(chains.size(), std::vector<double>(multipliers.size()));
  std::vector<std::vector<double>> vms(chains.size(), std::vector<double>(multipliers.size()));
  for (std::size_t ci = 0; ci < chains.size(); ++ci) {
    for (std::size_t mi = 0; mi < multipliers.size(); ++mi) {
      double cost_sum = 0.0, vm_sum = 0.0;
      int counted = 0;
      for (int s = 0; s < seeds; ++s) {
        sofe::topology::ProblemConfig cfg;
        cfg.chain_length = chains[ci];
        cfg.setup_scale = 1.0 * multipliers[mi];  // 1x = the Fig. 8 default scale
        cfg.seed = 500 + 31 * static_cast<std::uint64_t>(s);
        const auto p = sofe::topology::make_problem(topo, cfg);
        const auto f = solver->solve(p);
        if (f.empty()) continue;
        cost_sum += solver->report().total_cost;
        vm_sum += static_cast<double>(f.enabled_vms().size());
        ++counted;
      }
      if (counted > 0) {
        cost[ci][mi] = cost_sum / counted;
        vms[ci][mi] = vm_sum / counted;
      }
    }
  }

  auto print = [&](const char* title, const std::vector<std::vector<double>>& data,
                   int precision) {
    std::cout << "\n" << title << "\n";
    std::vector<std::string> header{"setup"};
    for (int c : chains) header.push_back("|C|=" + std::to_string(c));
    sofe::util::Table table(header);
    for (std::size_t mi = 0; mi < multipliers.size(); ++mi) {
      std::vector<std::string> row{std::to_string(multipliers[mi]) + "x"};
      for (std::size_t ci = 0; ci < chains.size(); ++ci) {
        row.push_back(sofe::util::Table::num(data[ci][mi], precision));
      }
      table.add_row(std::move(row));
    }
    table.print();
  };
  print("(a) forest cost", cost, 1);
  print("(b) average number of used VMs", vms, 2);
  return 0;
}
