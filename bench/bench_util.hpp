#pragma once
// Shared helpers for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md §4).  Each harness prints the same rows/series
// the paper reports; absolute magnitudes are ours (our substrate is a
// simulator), the *shape* is the reproduction target.

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sofe/api/registry.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/stopwatch.hpp"
#include "sofe/util/table.hpp"

namespace sofe::bench {

/// Number of random seeds averaged per experiment cell; override with
/// SOFE_BENCH_SEEDS for longer, smoother runs.
inline int seeds_per_cell(int default_seeds = 3) {
  if (const char* env = std::getenv("SOFE_BENCH_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return default_seeds;
}

inline const std::vector<std::string>& algorithm_names(bool with_exact) {
  static const std::vector<std::string> kWith{"SOFDA", "eNEMP", "eST", "ST", "CPLEX*"};
  static const std::vector<std::string> kWithout{"SOFDA", "eNEMP", "eST", "ST"};
  return with_exact ? kWith : kWithout;
}

/// Paper display name -> solver-registry name for the comparison set.
inline const std::vector<std::pair<std::string, std::string>>& comparison_solvers() {
  static const std::vector<std::pair<std::string, std::string>> kAlgos{
      {"SOFDA", "sofda"},
      {"eNEMP", "baseline/enemp"},
      {"eST", "baseline/est"},
      {"ST", "baseline/st"},
  };
  return kAlgos;
}

/// Mean total cost per algorithm over `seeds` sampled instances.
/// "CPLEX*" is our exact solver (DESIGN.md §3); its average covers the seeds
/// it proved optimal within budget and is omitted when it closed none
/// (larger |C| cells — documented in EXPERIMENTS.md).
inline std::map<std::string, double> mean_costs(const topology::Topology& topo,
                                                topology::ProblemConfig cfg, int seeds,
                                                bool with_exact) {
  // One solver session per algorithm, reused across the seed loop: each
  // seed's graph differs (cache miss), but the sessions keep their engine
  // and tree workspaces warm.
  std::vector<std::pair<std::string, std::unique_ptr<api::Solver>>> solvers;
  for (const auto& [display, registered] : comparison_solvers()) {
    solvers.emplace_back(display, api::make_solver(registered));
  }
  api::SolverOptions exact_opt;
  exact_opt.exact_limits.max_bnb_nodes = 10000;
  exact_opt.exact_limits.max_seconds = 25.0;  // fail fast on unclosable cells; EXPERIMENTS.md
  const auto exact_solver = with_exact ? api::make_solver("exact", exact_opt) : nullptr;

  std::map<std::string, double> sum;
  int counted = 0, exact_counted = 0;
  double exact_sum = 0.0;
  for (int s = 0; s < seeds; ++s) {
    cfg.seed = 1000 + 77 * static_cast<std::uint64_t>(s) + cfg.seed % 77;
    const auto p = topology::make_problem(topo, cfg);
    std::map<std::string, double> costs;
    bool all_feasible = true;
    for (const auto& [display, solver] : solvers) {
      const auto f = solver->solve(p);
      all_feasible = all_feasible && !f.empty();
      costs[display] = solver->report().total_cost;
    }
    if (!all_feasible) continue;
    if (exact_solver) {
      (void)exact_solver->solve(p);
      if (exact_solver->report().optimal) {
        exact_sum += exact_solver->report().total_cost;
        ++exact_counted;
      }
    }
    for (const auto& [display, cost] : costs) sum[display] += cost;
    ++counted;
  }
  if (counted > 0) {
    for (auto& [k, v] : sum) v /= counted;
  }
  // Only report the exact average when it covers the same seed set as the
  // heuristics — a partial average is not comparable.
  if (exact_counted == counted && exact_counted > 0) sum["CPLEX*"] = exact_sum / exact_counted;
  return sum;
}

/// Prints one sweep as a paper-style series table.
inline void print_sweep(const std::string& title, const std::string& x_name,
                        const std::vector<int>& xs,
                        const std::vector<std::map<std::string, double>>& rows,
                        bool with_exact, double scale = 1.0) {
  std::cout << "\n" << title << "\n";
  std::vector<std::string> header{x_name};
  for (const auto& a : algorithm_names(with_exact)) header.push_back(a);
  util::Table table(header);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> cells{std::to_string(xs[i])};
    for (const auto& a : algorithm_names(with_exact)) {
      const auto it = rows[i].find(a);
      cells.push_back(it == rows[i].end() ? "-" : util::Table::num(it->second / scale, 2));
    }
    table.add_row(std::move(cells));
  }
  table.print();
}

/// The paper's four sweeps (Figs. 8, 9, 10): #sources, #destinations,
/// #available VMs, service-chain length.
inline void run_cost_figure(const topology::Topology& topo, bool with_exact, double scale,
                            int max_dest_for_exact = 10) {
  const int seeds = seeds_per_cell();
  topology::ProblemConfig base;  // paper defaults: 14 sources, 6 dests, 25 VMs, |C|=3

  {
    const std::vector<int> xs{2, 8, 14, 20, 26};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.num_sources = x;
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact));
    }
    print_sweep("(a) cost vs number of sources", "|S|", xs, rows, with_exact, scale);
  }
  {
    const std::vector<int> xs{2, 4, 6, 8, 10};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.num_destinations = x;
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact && x <= max_dest_for_exact));
    }
    print_sweep("(b) cost vs number of destinations", "|D|", xs, rows, with_exact, scale);
  }
  {
    const std::vector<int> xs{5, 15, 25, 35, 45};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.num_vms = x;
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact));
    }
    print_sweep("(c) cost vs number of available VMs", "|M|", xs, rows, with_exact, scale);
  }
  {
    const std::vector<int> xs{3, 4, 5, 6, 7};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.chain_length = x;
      // The exact branch-and-bound stops proving optimality within budget
      // beyond |C| = 4 (relaxation gap grows with chain length); those
      // cells print "-" (EXPERIMENTS.md).
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact && x <= 4));
    }
    print_sweep("(d) cost vs service chain length", "|C|", xs, rows, with_exact, scale);
  }
}

}  // namespace sofe::bench
