#pragma once
// Shared helpers for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md §4).  Each harness prints the same rows/series
// the paper reports; absolute magnitudes are ours (our substrate is a
// simulator), the *shape* is the reproduction target.

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sofe/api/registry.hpp"
#include "sofe/api/report.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/stopwatch.hpp"
#include "sofe/util/table.hpp"

namespace sofe::bench {

/// Number of random seeds averaged per experiment cell; override with
/// SOFE_BENCH_SEEDS for longer, smoother runs.
inline int seeds_per_cell(int default_seeds = 3) {
  if (const char* env = std::getenv("SOFE_BENCH_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return default_seeds;
}

inline const std::vector<std::string>& algorithm_names(bool with_exact) {
  static const std::vector<std::string> kWith{"SOFDA", "eNEMP", "eST", "ST", "CPLEX*"};
  static const std::vector<std::string> kWithout{"SOFDA", "eNEMP", "eST", "ST"};
  return with_exact ? kWith : kWithout;
}

/// Paper display name -> solver-registry name for the comparison set.
inline const std::vector<std::pair<std::string, std::string>>& comparison_solvers() {
  static const std::vector<std::pair<std::string, std::string>> kAlgos{
      {"SOFDA", "sofda"},
      {"eNEMP", "baseline/enemp"},
      {"eST", "baseline/est"},
      {"ST", "baseline/st"},
  };
  return kAlgos;
}

/// Prints per-phase timing breakdowns (closure/pricing/solve/total
/// mean+p95 in milliseconds, plus the closure-session and pricing-cache
/// outcome tallies) collected by ReportAccumulators — one row per
/// algorithm.
inline void print_phase_breakdown(
    const std::string& title,
    const std::vector<std::pair<std::string, const api::ReportAccumulator*>>& rows) {
  std::cout << "\n" << title << "\n";
  util::Table table({"algo", "solves", "closure ms (p95)", "pricing ms (p95)",
                     "solve ms (p95)", "total ms (p95)", "hit/repair/rebuild",
                     "chains hit/repriced"});
  const auto cell = [](const api::PhaseSummary& s) {
    return util::Table::num(s.mean * 1e3, 2) + " (" + util::Table::num(s.p95 * 1e3, 2) + ")";
  };
  for (const auto& [name, acc] : rows) {
    table.add_row({name, std::to_string(acc->solves()), cell(acc->closure()),
                   cell(acc->pricing()), cell(acc->solve()), cell(acc->total()),
                   std::to_string(acc->cache_hits()) + "/" + std::to_string(acc->repairs()) +
                       "/" + std::to_string(acc->rebuilds()),
                   std::to_string(acc->pricing_hits()) + "/" +
                       std::to_string(acc->pricing_repriced())});
  }
  table.print();
}

/// Mean total cost per algorithm over `seeds` sampled instances.
/// "CPLEX*" is our exact solver (DESIGN.md §3); its average covers the seeds
/// it proved optimal within budget and is omitted when it closed none
/// (larger |C| cells — documented in EXPERIMENTS.md).
/// When `acc` is given, every solve's report is folded into the caller's
/// per-algorithm accumulators (print_phase_breakdown renders them).
inline std::map<std::string, double> mean_costs(const topology::Topology& topo,
                                                topology::ProblemConfig cfg, int seeds,
                                                bool with_exact,
                                                std::map<std::string, api::ReportAccumulator>* acc = nullptr) {
  // One solver session per algorithm, reused across the seed loop: each
  // seed's graph differs (cache miss), but the sessions keep their engine
  // and tree workspaces warm.
  std::vector<std::pair<std::string, std::unique_ptr<api::Solver>>> solvers;
  for (const auto& [display, registered] : comparison_solvers()) {
    solvers.emplace_back(display, api::make_solver(registered));
    if (acc != nullptr) solvers.back().second->set_report_sink(&(*acc)[display]);
  }
  api::SolverOptions exact_opt;
  exact_opt.exact_limits.max_bnb_nodes = 10000;
  exact_opt.exact_limits.max_seconds = 25.0;  // fail fast on unclosable cells; EXPERIMENTS.md
  const auto exact_solver = with_exact ? api::make_solver("exact", exact_opt) : nullptr;

  std::map<std::string, double> sum;
  int counted = 0, exact_counted = 0;
  double exact_sum = 0.0;
  for (int s = 0; s < seeds; ++s) {
    cfg.seed = 1000 + 77 * static_cast<std::uint64_t>(s) + cfg.seed % 77;
    const auto p = topology::make_problem(topo, cfg);
    std::map<std::string, double> costs;
    bool all_feasible = true;
    for (const auto& [display, solver] : solvers) {
      const auto f = solver->solve(p);
      all_feasible = all_feasible && !f.empty();
      costs[display] = solver->report().total_cost;
    }
    if (!all_feasible) continue;
    if (exact_solver) {
      (void)exact_solver->solve(p);
      if (exact_solver->report().optimal) {
        exact_sum += exact_solver->report().total_cost;
        ++exact_counted;
      }
    }
    for (const auto& [display, cost] : costs) sum[display] += cost;
    ++counted;
  }
  if (counted > 0) {
    for (auto& [k, v] : sum) v /= counted;
  }
  // Only report the exact average when it covers the same seed set as the
  // heuristics — a partial average is not comparable.
  if (exact_counted == counted && exact_counted > 0) sum["CPLEX*"] = exact_sum / exact_counted;
  return sum;
}

/// Prints one sweep as a paper-style series table.
inline void print_sweep(const std::string& title, const std::string& x_name,
                        const std::vector<int>& xs,
                        const std::vector<std::map<std::string, double>>& rows,
                        bool with_exact, double scale = 1.0) {
  std::cout << "\n" << title << "\n";
  std::vector<std::string> header{x_name};
  for (const auto& a : algorithm_names(with_exact)) header.push_back(a);
  util::Table table(header);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> cells{std::to_string(xs[i])};
    for (const auto& a : algorithm_names(with_exact)) {
      const auto it = rows[i].find(a);
      cells.push_back(it == rows[i].end() ? "-" : util::Table::num(it->second / scale, 2));
    }
    table.add_row(std::move(cells));
  }
  table.print();
}

/// The paper's four sweeps (Figs. 8, 9, 10): #sources, #destinations,
/// #available VMs, service-chain length.
inline void run_cost_figure(const topology::Topology& topo, bool with_exact, double scale,
                            int max_dest_for_exact = 10) {
  const int seeds = seeds_per_cell();
  topology::ProblemConfig base;  // paper defaults: 14 sources, 6 dests, 25 VMs, |C|=3
  std::map<std::string, api::ReportAccumulator> acc;  // figure-wide phase stats

  {
    const std::vector<int> xs{2, 8, 14, 20, 26};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.num_sources = x;
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact, &acc));
    }
    print_sweep("(a) cost vs number of sources", "|S|", xs, rows, with_exact, scale);
  }
  {
    const std::vector<int> xs{2, 4, 6, 8, 10};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.num_destinations = x;
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact && x <= max_dest_for_exact, &acc));
    }
    print_sweep("(b) cost vs number of destinations", "|D|", xs, rows, with_exact, scale);
  }
  {
    const std::vector<int> xs{5, 15, 25, 35, 45};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.num_vms = x;
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact, &acc));
    }
    print_sweep("(c) cost vs number of available VMs", "|M|", xs, rows, with_exact, scale);
  }
  {
    const std::vector<int> xs{3, 4, 5, 6, 7};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.chain_length = x;
      // The exact branch-and-bound stops proving optimality within budget
      // beyond |C| = 4 (relaxation gap grows with chain length); those
      // cells print "-" (EXPERIMENTS.md).
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact && x <= 4, &acc));
    }
    print_sweep("(d) cost vs service chain length", "|C|", xs, rows, with_exact, scale);
  }

  std::vector<std::pair<std::string, const api::ReportAccumulator*>> rows;
  for (const auto& [display, registered] : comparison_solvers()) {
    (void)registered;
    rows.emplace_back(display, &acc.at(display));
  }
  print_phase_breakdown("per-solve phase breakdown (all sweeps)", rows);
}

}  // namespace sofe::bench
