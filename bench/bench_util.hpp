#pragma once
// Shared helpers for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md §4).  Each harness prints the same rows/series
// the paper reports; absolute magnitudes are ours (our substrate is a
// simulator), the *shape* is the reproduction target.

#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sofe/api/registry.hpp"
#include "sofe/api/report.hpp"
#include "sofe/core/validate.hpp"
#include "sofe/dist/dist_sofda.hpp"
#include "sofe/online/simulator.hpp"
#include "sofe/topology/topology.hpp"
#include "sofe/util/stopwatch.hpp"
#include "sofe/util/table.hpp"

namespace sofe::bench {

/// Number of random seeds averaged per experiment cell; override with
/// SOFE_BENCH_SEEDS for longer, smoother runs.
inline int seeds_per_cell(int default_seeds = 3) {
  if (const char* env = std::getenv("SOFE_BENCH_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return default_seeds;
}

inline const std::vector<std::string>& algorithm_names(bool with_exact) {
  static const std::vector<std::string> kWith{"SOFDA", "eNEMP", "eST", "ST", "CPLEX*"};
  static const std::vector<std::string> kWithout{"SOFDA", "eNEMP", "eST", "ST"};
  return with_exact ? kWith : kWithout;
}

/// Paper display name -> solver-registry name for the comparison set.
inline const std::vector<std::pair<std::string, std::string>>& comparison_solvers() {
  static const std::vector<std::pair<std::string, std::string>> kAlgos{
      {"SOFDA", "sofda"},
      {"eNEMP", "baseline/enemp"},
      {"eST", "baseline/est"},
      {"ST", "baseline/st"},
  };
  return kAlgos;
}

/// Shared envelope for every harness's --json artifact (fig09/fig10 via
/// write_dist_json, fig12, fig13): the document always opens with the bench
/// name and the "smoke" marker.  A --smoke --json run used to overwrite a
/// full artifact with fewer panels and no way to tell — consumers (CI
/// artifacts, trend scripts) key on "smoke", so the marker rule is enforced
/// here, in one place, instead of re-implemented per harness.  Append
/// bench-specific fields to body() (each starting with ","), then
/// finish(path) closes the document, writes the file and echoes the path.
class BenchJsonWriter {
 public:
  BenchJsonWriter(const std::string& bench_name, bool smoke) {
    out_ << "{\"bench\":\"" << bench_name << "\",\"smoke\":" << (smoke ? "true" : "false");
  }
  std::ostringstream& body() noexcept { return out_; }
  void finish(const char* path) {
    out_ << "}\n";
    std::ofstream file(path);
    file << out_.str();
    std::cout << "wrote " << path << "\n";
  }

 private:
  std::ostringstream out_;
};

/// Prints per-phase timing breakdowns (closure/pricing/solve/total
/// mean+p95 in milliseconds, plus the closure-session, pricing-cache and
/// row-retention outcome tallies and the peak closure slab footprint)
/// collected by ReportAccumulators — one row per algorithm.
inline void print_phase_breakdown(
    const std::string& title,
    const std::vector<std::pair<std::string, const api::ReportAccumulator*>>& rows) {
  std::cout << "\n" << title << "\n";
  util::Table table({"algo", "solves", "closure ms (p95)", "pricing ms (p95)",
                     "solve ms (p95)", "total ms (p95)", "hit/repair/rebuild",
                     "chains hit/repriced", "rows hit/ret/evict", "peak KB"});
  const auto cell = [](const api::PhaseSummary& s) {
    return util::Table::num(s.mean * 1e3, 2) + " (" + util::Table::num(s.p95 * 1e3, 2) + ")";
  };
  for (const auto& [name, acc] : rows) {
    table.add_row({name, std::to_string(acc->solves()), cell(acc->closure()),
                   cell(acc->pricing()), cell(acc->solve()), cell(acc->total()),
                   std::to_string(acc->cache_hits()) + "/" + std::to_string(acc->repairs()) +
                       "/" + std::to_string(acc->rebuilds()),
                   std::to_string(acc->pricing_hits()) + "/" +
                       std::to_string(acc->pricing_repriced()),
                   std::to_string(acc->closure_row_hits()) + "/" +
                       std::to_string(acc->closure_rows_retained()) + "/" +
                       std::to_string(acc->closure_rows_evicted()),
                   util::Table::num(static_cast<double>(acc->peak_closure_bytes()) / 1024.0, 1)});
  }
  table.print();
}

/// Mean total cost per algorithm over `seeds` sampled instances.
/// "CPLEX*" is our exact solver (DESIGN.md §3); its average covers the seeds
/// it proved optimal within budget and is omitted when it closed none
/// (larger |C| cells — documented in EXPERIMENTS.md).
/// When `acc` is given, every solve's report is folded into the caller's
/// per-algorithm accumulators (print_phase_breakdown renders them).
inline std::map<std::string, double> mean_costs(const topology::Topology& topo,
                                                topology::ProblemConfig cfg, int seeds,
                                                bool with_exact,
                                                std::map<std::string, api::ReportAccumulator>* acc = nullptr) {
  // One solver session per algorithm, reused across the seed loop: each
  // seed's graph differs (cache miss), but the sessions keep their engine
  // and tree workspaces warm.
  std::vector<std::pair<std::string, std::unique_ptr<api::Solver>>> solvers;
  for (const auto& [display, registered] : comparison_solvers()) {
    solvers.emplace_back(display, api::make_solver(registered));
    if (acc != nullptr) solvers.back().second->set_report_sink(&(*acc)[display]);
  }
  api::SolverOptions exact_opt;
  exact_opt.exact_limits.max_bnb_nodes = 10000;
  exact_opt.exact_limits.max_seconds = 25.0;  // fail fast on unclosable cells; EXPERIMENTS.md
  const auto exact_solver = with_exact ? api::make_solver("exact", exact_opt) : nullptr;

  std::map<std::string, double> sum;
  int counted = 0, exact_counted = 0;
  double exact_sum = 0.0;
  for (int s = 0; s < seeds; ++s) {
    cfg.seed = 1000 + 77 * static_cast<std::uint64_t>(s) + cfg.seed % 77;
    const auto p = topology::make_problem(topo, cfg);
    std::map<std::string, double> costs;
    bool all_feasible = true;
    for (const auto& [display, solver] : solvers) {
      const auto f = solver->solve(p);
      all_feasible = all_feasible && !f.empty();
      costs[display] = solver->report().total_cost;
    }
    if (!all_feasible) continue;
    if (exact_solver) {
      (void)exact_solver->solve(p);
      if (exact_solver->report().optimal) {
        exact_sum += exact_solver->report().total_cost;
        ++exact_counted;
      }
    }
    for (const auto& [display, cost] : costs) sum[display] += cost;
    ++counted;
  }
  if (counted > 0) {
    for (auto& [k, v] : sum) v /= counted;
  }
  // Only report the exact average when it covers the same seed set as the
  // heuristics — a partial average is not comparable.
  if (exact_counted == counted && exact_counted > 0) sum["CPLEX*"] = exact_sum / exact_counted;
  return sum;
}

/// Prints one sweep as a paper-style series table.
inline void print_sweep(const std::string& title, const std::string& x_name,
                        const std::vector<int>& xs,
                        const std::vector<std::map<std::string, double>>& rows,
                        bool with_exact, double scale = 1.0) {
  std::cout << "\n" << title << "\n";
  std::vector<std::string> header{x_name};
  for (const auto& a : algorithm_names(with_exact)) header.push_back(a);
  util::Table table(header);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> cells{std::to_string(xs[i])};
    for (const auto& a : algorithm_names(with_exact)) {
      const auto it = rows[i].find(a);
      cells.push_back(it == rows[i].end() ? "-" : util::Table::num(it->second / scale, 2));
    }
    table.add_row(std::move(cells));
  }
  table.print();
}

/// The paper's four sweeps (Figs. 8, 9, 10): #sources, #destinations,
/// #available VMs, service-chain length.
inline void run_cost_figure(const topology::Topology& topo, bool with_exact, double scale,
                            int max_dest_for_exact = 10) {
  const int seeds = seeds_per_cell();
  topology::ProblemConfig base;  // paper defaults: 14 sources, 6 dests, 25 VMs, |C|=3
  std::map<std::string, api::ReportAccumulator> acc;  // figure-wide phase stats

  {
    const std::vector<int> xs{2, 8, 14, 20, 26};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.num_sources = x;
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact, &acc));
    }
    print_sweep("(a) cost vs number of sources", "|S|", xs, rows, with_exact, scale);
  }
  {
    const std::vector<int> xs{2, 4, 6, 8, 10};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.num_destinations = x;
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact && x <= max_dest_for_exact, &acc));
    }
    print_sweep("(b) cost vs number of destinations", "|D|", xs, rows, with_exact, scale);
  }
  {
    const std::vector<int> xs{5, 15, 25, 35, 45};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.num_vms = x;
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact, &acc));
    }
    print_sweep("(c) cost vs number of available VMs", "|M|", xs, rows, with_exact, scale);
  }
  {
    const std::vector<int> xs{3, 4, 5, 6, 7};
    std::vector<std::map<std::string, double>> rows;
    for (int x : xs) {
      auto cfg = base;
      cfg.chain_length = x;
      // The exact branch-and-bound stops proving optimality within budget
      // beyond |C| = 4 (relaxation gap grows with chain length); those
      // cells print "-" (EXPERIMENTS.md).
      rows.push_back(mean_costs(topo, cfg, seeds, with_exact && x <= 4, &acc));
    }
    print_sweep("(d) cost vs service chain length", "|C|", xs, rows, with_exact, scale);
  }

  std::vector<std::pair<std::string, const api::ReportAccumulator*>> rows;
  for (const auto& [display, registered] : comparison_solvers()) {
    (void)registered;
    rows.emplace_back(display, &acc.at(display));
  }
  print_phase_breakdown("per-solve phase breakdown (all sweeps)", rows);
}

// ------------------------------------------------------------------------
// Multi-controller k-sweep panel (DESIGN.md §11): shared by the Cogent and
// Inet cost figures.  For each controller count it runs the one-shot
// distributed solve (sharded closure build + row exchange) and an online
// arrival loop with the "dist/k=<k>" session solver, asserting both stay
// *bitwise* identical to the centralized "sofda" run — the property the
// sharded stitch guarantees — and reporting the scaling the sharding buys:
// per-controller closure build time shrinking with k, exchanged bytes
// tracking |borders|·|hubs ∪ borders| rather than |V|².

struct DistSweepPoint {
  int k = 1;                    // controllers requested (== used on these instances)
  double closure_build_seconds = 0.0;        // slowest controller (critical path)
  double closure_build_seconds_total = 0.0;  // sum over controllers (the k=1 work)
  double stitch_seconds = 0.0;
  std::size_t exchanged_rows = 0;
  std::size_t exchanged_entries = 0;
  std::size_t skeleton_edges = 0;
  std::size_t messages = 0;
  std::size_t payload_bytes = 0;  // whole-protocol wire bytes (incl. row exchange)
  int rounds = 0;
  double arrival_loop_seconds = 0.0;  // online stream through the dist session
  bool identical = true;              // one-shot forest AND online series == "sofda"
};

struct DistSweep {
  std::string topology;
  int nodes = 0;
  int edges = 0;
  std::size_t hub_count = 0;  // VMs + sources of the one-shot instance
  std::vector<DistSweepPoint> points;
};

inline bool dist_forests_identical(const core::ServiceForest& a, const core::ServiceForest& b) {
  if (a.walks.size() != b.walks.size()) return false;
  for (std::size_t i = 0; i < a.walks.size(); ++i) {
    if (a.walks[i].source != b.walks[i].source ||
        a.walks[i].destination != b.walks[i].destination ||
        a.walks[i].nodes != b.walks[i].nodes || a.walks[i].vnf_pos != b.walks[i].vnf_pos) {
      return false;
    }
  }
  return true;
}

inline bool dist_series_identical(const online::OnlineResult& a, const online::OnlineResult& b) {
  if (a.accumulative_cost.size() != b.accumulative_cost.size()) return false;
  for (std::size_t i = 0; i < a.accumulative_cost.size(); ++i) {
    if (a.accumulative_cost[i] != b.accumulative_cost[i]) return false;  // bitwise
    if (a.per_request_cost[i] != b.per_request_cost[i]) return false;
  }
  return a.infeasible_requests == b.infeasible_requests &&
         a.overloaded_links == b.overloaded_links;
}

inline DistSweep run_dist_ksweep(const topology::Topology& topo, topology::ProblemConfig cfg,
                                 const online::OnlineConfig& online_cfg,
                                 const std::vector<int>& ks = {1, 2, 4, 8}) {
  DistSweep sweep;
  sweep.topology = topo.name;
  sweep.nodes = static_cast<int>(topo.g.node_count());
  sweep.edges = static_cast<int>(topo.g.edge_count());

  const auto p = topology::make_problem(topo, cfg);
  sweep.hub_count = p.vms().size() + p.sources.size();
  core::SofdaStats central_stats;
  const auto central = core::sofda(p, {}, &central_stats);

  // The online determinism reference: the same stream through "sofda".
  auto central_solver = api::make_solver("sofda");
  const auto central_series = simulate(topo, online_cfg, *central_solver);

  std::cout << "\nmulti-controller k-sweep (" << sweep.topology << ", " << sweep.nodes
            << " nodes, " << sweep.edges << " links, " << sweep.hub_count << " hubs, "
            << online_cfg.requests << " online arrivals)\n";
  util::Table table({"k", "build_s(max)", "build_s(sum)", "stitch_s", "rows", "KB",
                     "skel_edges", "rounds", "arrivals_s", "vs sofda"});
  for (int k : ks) {
    DistSweepPoint pt;
    pt.k = k;
    const auto r = dist::distributed_sofda(p, k);
    pt.closure_build_seconds = r.closure_build_seconds;
    pt.closure_build_seconds_total = r.closure_build_seconds_total;
    pt.stitch_seconds = r.stitch_seconds;
    pt.exchanged_rows = r.exchanged_rows;
    pt.exchanged_entries = r.exchanged_entries;
    pt.skeleton_edges = r.skeleton_edges;
    pt.messages = r.messages;
    pt.payload_bytes = r.payload_bytes;
    pt.rounds = r.rounds;
    pt.identical = dist_forests_identical(r.forest, central) &&
                   r.stats.steiner_tree_cost == central_stats.steiner_tree_cost;

    auto solver = api::make_solver("dist/k=" + std::to_string(k));
    util::Stopwatch watch;
    const auto series = simulate(topo, online_cfg, *solver);
    pt.arrival_loop_seconds = watch.seconds();
    pt.identical = pt.identical && dist_series_identical(series, central_series);
    if (!pt.identical) {
      std::cerr << "ERROR: dist/k=" << k << " diverged from the centralized sofda run on "
                << sweep.topology << "\n";
    }

    table.add_row({std::to_string(k), util::Table::num(pt.closure_build_seconds * 1e3, 2) + "ms",
                   util::Table::num(pt.closure_build_seconds_total * 1e3, 2) + "ms",
                   util::Table::num(pt.stitch_seconds * 1e3, 2) + "ms",
                   std::to_string(pt.exchanged_rows),
                   util::Table::num(static_cast<double>(pt.payload_bytes) / 1024.0, 1),
                   std::to_string(pt.skeleton_edges), std::to_string(pt.rounds),
                   util::Table::num(pt.arrival_loop_seconds, 3),
                   pt.identical ? "bit-identical" : "DIVERGED"});
    sweep.points.push_back(pt);
  }
  table.print();
  std::cout << "(k=1 is the centralized fallback: no exchange, no rounds; at k>1 the row\n"
            << " exchange ships O(|borders|*|hubs+borders|) entries, never |V|^2)\n";
  return sweep;
}

inline void write_dist_json(const std::string& bench_name, const std::vector<DistSweep>& sweeps,
                            bool smoke, const char* path) {
  BenchJsonWriter writer(bench_name, smoke);
  std::ostringstream& out = writer.body();
  out << ",\"sweeps\":[";
  for (std::size_t si = 0; si < sweeps.size(); ++si) {
    const auto& s = sweeps[si];
    out << (si ? "," : "") << "{\"topology\":\"" << s.topology << "\",\"nodes\":" << s.nodes
        << ",\"edges\":" << s.edges << ",\"hubs\":" << s.hub_count << ",\"points\":[";
    for (std::size_t pi = 0; pi < s.points.size(); ++pi) {
      const auto& pt = s.points[pi];
      out << (pi ? "," : "") << "{\"k\":" << pt.k
          << ",\"closure_build_seconds\":" << pt.closure_build_seconds
          << ",\"closure_build_seconds_total\":" << pt.closure_build_seconds_total
          << ",\"stitch_seconds\":" << pt.stitch_seconds
          << ",\"exchanged_rows\":" << pt.exchanged_rows
          << ",\"exchanged_entries\":" << pt.exchanged_entries
          << ",\"exchanged_bytes\":" << pt.exchanged_entries * sizeof(core::Cost)
          << ",\"skeleton_edges\":" << pt.skeleton_edges << ",\"messages\":" << pt.messages
          << ",\"payload_bytes\":" << pt.payload_bytes << ",\"rounds\":" << pt.rounds
          << ",\"arrival_loop_seconds\":" << pt.arrival_loop_seconds
          << ",\"bit_identical\":" << (pt.identical ? "true" : "false") << "}";
    }
    out << "]}";
  }
  out << "]";
  writer.finish(path);
}

/// Exit status for the dist panel: nonzero when any point diverged from the
/// centralized run (the smoke ctest entry fails loudly on it).
inline bool dist_sweeps_identical(const std::vector<DistSweep>& sweeps) {
  for (const auto& s : sweeps) {
    for (const auto& pt : s.points) {
      if (!pt.identical) return false;
    }
  }
  return true;
}

}  // namespace sofe::bench
