// Fig. 12: online deployment — accumulative cost vs number of arrived
// demands, (a) SoftLayer (30 arrivals, |D|~U[13,17], |S|~U[8,12]) and
// (b) Cogent (45 arrivals, |D|~U[20,60], |S|~U[10,30]); |C| = 3.
//
// Expected shape: all curves grow super-linearly as the network loads up;
// SOFDA's stays lowest because it prices congestion into every embedding.
//
// This harness is also the incremental pipeline's acceptance bench
// (DESIGN.md §8 + §9): every solver runs the arrival loop twice — once
// with the delta-aware session (SolverOptions::incremental closure repair
// plus the ::incremental_pricing chain cache) and once with the recomputing
// baseline (both knobs off, per-arrival Problem copies) — verifies the two
// series bit for bit (exit 1 on any divergence), and reports the
// arrival-loop speedup, the pricing-cache hit/reprice tallies and a
// per-phase breakdown.
//
// Flags:
// PR 6 adds the pipeline panel (DESIGN.md §10): a worker-count sweep of
// online::serve_pipelined over the same arrival stream, pinned to the
// container's hardware concurrency (powers of two up to it, floor 2 so the
// TSan CI cell always exercises real threads), asserting every point's cost
// series bitwise equal to the sequential epoch driver and reporting
// admission throughput (arrivals/s).  The machine's hardware_concurrency
// lands in the JSON so sweeps from different machines stay comparable.
//
// PR 9 adds the steady-state panels (DESIGN.md §13): a recurring-source
// arrival panel (sources drawn from a fixed Zipf-ish pool —
// OnlineConfig::source_pool/source_alpha) and a retention on/off sweep that
// runs the same stream at retention window sizes {0, default}, asserting
// bitwise-identical cost series (the window is a pure speed/memory knob)
// while reporting the warm-row hit rate and peak closure slab footprint the
// LRU window buys.  Pipeline sweep points now also record the commit
// thread's epoch-publish wall time plus the publisher session's row tallies.
//
// Flags:
//   --smoke      tiny instance (CI: exercises the incremental path in
//                seconds); the JSON carries "smoke": true so consumers
//                never mistake the reduced panel set for a full run
//   --recurring  recurring-source panels only (with --smoke: the
//                bench_online_recurring_smoke ctest entry — drives the
//                retention + COW publish path under TSan without writing
//                BENCH_online.json next to the main smoke entry)
//   --json       additionally write the measurements to BENCH_online.json

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_util.hpp"
#include "sofe/online/pipeline.hpp"
#include "sofe/online/simulator.hpp"

namespace {

struct SolverMeasurement {
  std::string name;
  sofe::online::OnlineResult series;         // incremental run (reported)
  sofe::api::ReportAccumulator incremental;  // per-arrival phase stats
  sofe::api::ReportAccumulator recompute;    // …of the recomputing baseline
  double incremental_seconds = 0.0;          // arrival-loop wall time
  double rebuild_seconds = 0.0;              // recomputing baseline wall time
  bool identical = true;                     // series bit-identical across modes
};

struct PanelMeasurement {
  std::string name;
  std::vector<SolverMeasurement> solvers;
};

bool series_identical(const sofe::online::OnlineResult& a, const sofe::online::OnlineResult& b) {
  if (a.accumulative_cost.size() != b.accumulative_cost.size()) return false;
  for (std::size_t i = 0; i < a.accumulative_cost.size(); ++i) {
    if (a.accumulative_cost[i] != b.accumulative_cost[i]) return false;  // bitwise
    if (a.per_request_cost[i] != b.per_request_cost[i]) return false;
  }
  return a.infeasible_requests == b.infeasible_requests &&
         a.overloaded_links == b.overloaded_links;
}

struct SweepPoint {
  int workers = 1;
  double seconds = 0.0;             // pipeline wall time for the whole stream
  double arrivals_per_second = 0.0;
  int stale_repriced = 0;           // speculative results discarded + re-solved
  int speculative_commits = 0;      // speculative results that survived validation
  double publish_seconds = 0.0;     // commit-thread wall spent publishing epochs
  // Publisher-session steady-state tallies (DESIGN.md §13), summed over
  // the stream's epoch publishes.
  std::size_t row_hits = 0;
  std::size_t rows_retained = 0;
  std::size_t rows_evicted = 0;
  std::size_t peak_closure_bytes = 0;
  bool identical = true;            // series bitwise == sequential epoch driver
};

struct WorkerSweep {
  std::string name;
  int epoch_size = 1;
  double sequential_seconds = 0.0;  // 1-thread simulate() at the same epoch_size
  std::vector<SweepPoint> points;
};

// Retention on/off sweep (DESIGN.md §13): the same recurring-source arrival
// stream through the sequential "sofda" session at each retention window
// size.  The window is a pure speed/memory knob, so every point's cost
// series must be bitwise identical to the first (exit 1 otherwise); what
// changes is the warm-row hit tally — sources drawn from a fixed Zipf-ish
// pool keep coming back, and a retained row turns each comeback from a
// fresh Dijkstra build into a delta-stream revalidation.
struct RetentionPoint {
  int retention_rows = 0;
  double seconds = 0.0;             // arrival-loop wall time
  std::size_t solves = 0;
  std::size_t row_hits = 0;
  std::size_t rows_retained = 0;
  std::size_t rows_evicted = 0;
  std::size_t peak_closure_bytes = 0;
  double hit_rate = 0.0;            // row_hits / solves
  bool identical = true;            // series bitwise == the sweep's first point
};

struct RetentionSweep {
  std::string name;
  int source_pool = 0;
  double source_alpha = 0.0;
  std::vector<RetentionPoint> points;
};

RetentionSweep run_retention_sweep(const char* title, const sofe::topology::Topology& topo,
                                   const sofe::online::OnlineConfig& cfg,
                                   const std::vector<int>& retention_values) {
  std::cout << "\n" << title << " — retention window sweep (source pool " << cfg.source_pool
            << ", alpha " << cfg.source_alpha << ", solver sofda)\n";
  RetentionSweep sweep;
  sweep.name = title;
  sweep.source_pool = cfg.source_pool;
  sweep.source_alpha = cfg.source_alpha;

  sofe::util::Table table({"retention", "wall_s", "rows hit", "retained", "evicted",
                           "hit rate", "peak KB", "series"});
  sofe::online::OnlineResult reference;
  for (int retention : retention_values) {
    sofe::api::SolverOptions opt;
    opt.retention_rows = retention;
    auto solver = sofe::api::make_solver("sofda", opt);
    sofe::api::ReportAccumulator acc;
    solver->set_report_sink(&acc);
    sofe::util::Stopwatch watch;
    const auto series = simulate(topo, cfg, *solver);
    RetentionPoint pt;
    pt.retention_rows = retention;
    pt.seconds = watch.seconds();
    pt.solves = acc.solves();
    pt.row_hits = acc.closure_row_hits();
    pt.rows_retained = acc.closure_rows_retained();
    pt.rows_evicted = acc.closure_rows_evicted();
    pt.peak_closure_bytes = acc.peak_closure_bytes();
    pt.hit_rate = pt.solves > 0 ? static_cast<double>(pt.row_hits) /
                                      static_cast<double>(pt.solves)
                                : 0.0;
    if (sweep.points.empty()) {
      reference = series;
    } else {
      pt.identical = series_identical(series, reference);
      if (!pt.identical) {
        std::cerr << "ERROR: " << title << ": retention window " << retention
                  << " changed the cost series (it must be a pure speed knob)\n";
      }
    }
    table.add_row({std::to_string(retention), sofe::util::Table::num(pt.seconds, 3),
                   std::to_string(pt.row_hits), std::to_string(pt.rows_retained),
                   std::to_string(pt.rows_evicted), sofe::util::Table::num(pt.hit_rate, 2),
                   sofe::util::Table::num(
                       static_cast<double>(pt.peak_closure_bytes) / 1024.0, 1),
                   pt.identical ? "bit-identical" : "DIVERGED"});
    sweep.points.push_back(pt);
  }
  table.print();
  return sweep;
}

PanelMeasurement run_panel(const char* title, const sofe::topology::Topology& topo,
                           const sofe::online::OnlineConfig& cfg, int print_every) {
  std::cout << "\n" << title << "\n";
  PanelMeasurement panel;
  panel.name = title;

  std::vector<std::string> header{"#demands"};
  for (const auto& [display, registered] : sofe::bench::comparison_solvers()) {
    SolverMeasurement m;
    m.name = display;

    // Incremental arrival loop: ONE persistent Problem, sessions repair
    // their closures from the per-arrival cost deltas.
    auto solver = sofe::api::make_solver(registered);
    solver->set_report_sink(&m.incremental);
    sofe::util::Stopwatch watch;
    m.series = simulate(topo, cfg, *solver);
    m.incremental_seconds = watch.seconds();
    m.series.algorithm = display;

    // Recomputing baseline: per-arrival Problem copies + strict sessions
    // that rebuild the closure whenever anything changed and re-price every
    // chain from scratch (the pre-§9 pricing path).
    sofe::api::SolverOptions rebuild_opt;
    rebuild_opt.incremental = false;
    rebuild_opt.incremental_pricing = false;
    auto rebuilding = sofe::api::make_solver(registered, rebuild_opt);
    rebuilding->set_report_sink(&m.recompute);
    auto ref_cfg = cfg;
    ref_cfg.copy_problems = true;
    watch.reset();
    const auto reference = simulate(topo, ref_cfg, *rebuilding);
    m.rebuild_seconds = watch.seconds();

    m.identical = series_identical(m.series, reference);
    if (!m.identical) {
      std::cerr << "ERROR: " << display
                << ": incremental series differs from the recomputing baseline\n";
    }
    header.push_back(display);
    panel.solvers.push_back(std::move(m));
  }

  sofe::util::Table table(header);
  for (int i = print_every - 1; i < cfg.requests; i += print_every) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (const auto& m : panel.solvers) {
      row.push_back(
          sofe::util::Table::num(m.series.accumulative_cost[static_cast<std::size_t>(i)], 0));
    }
    table.add_row(std::move(row));
  }
  table.print();
  for (const auto& m : panel.solvers) {
    std::cout << m.name << ": overloaded links at end = " << m.series.overloaded_links
              << ", infeasible = " << m.series.infeasible_requests
              << ", arrival loop " << sofe::util::Table::num(m.incremental_seconds, 3)
              << "s incremental vs " << sofe::util::Table::num(m.rebuild_seconds, 3)
              << "s recomputing (x"
              << sofe::util::Table::num(
                     m.incremental_seconds > 0.0 ? m.rebuild_seconds / m.incremental_seconds : 1.0,
                     2)
              << ", series " << (m.identical ? "bit-identical" : "DIVERGED") << ")\n";
    const double inc_closure = m.incremental.closure().total;
    const double re_closure = m.recompute.closure().total;
    if (re_closure > 0.0 && inc_closure > 0.0) {
      std::cout << "    closure phase: " << sofe::util::Table::num(inc_closure, 3)
                << "s repaired vs " << sofe::util::Table::num(re_closure, 3)
                << "s rebuilt (x" << sofe::util::Table::num(re_closure / inc_closure, 2)
                << ")\n";
    }
    const double inc_pricing = m.incremental.pricing().total;
    const double re_pricing = m.recompute.pricing().total;
    if (re_pricing > 0.0 && inc_pricing > 0.0) {
      std::cout << "    pricing phase: " << sofe::util::Table::num(inc_pricing, 3)
                << "s cached (" << m.incremental.pricing_hits() << " hits / "
                << m.incremental.pricing_repriced() << " repriced, "
                << m.incremental.pricing_flushes() << " flushes) vs "
                << sofe::util::Table::num(re_pricing, 3) << "s from scratch (x"
                << sofe::util::Table::num(re_pricing / inc_pricing, 2) << ")\n";
    }
  }
  std::vector<std::pair<std::string, const sofe::api::ReportAccumulator*>> rows;
  for (const auto& m : panel.solvers) rows.emplace_back(m.name, &m.incremental);
  sofe::bench::print_phase_breakdown("per-arrival phase breakdown (incremental)", rows);
  return panel;
}

// Satellite: the sweep is pinned to THIS machine — powers of two up to
// max(2, hardware_concurrency).  The floor of 2 keeps the concurrent path
// (and the TSan CI cell) honest even on single-core containers; the JSON
// records hardware_concurrency so consumers can normalise across machines.
unsigned hardware_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<int> sweep_worker_counts() {
  const unsigned top = std::max(2u, hardware_concurrency());
  std::vector<int> counts;
  for (unsigned w = 1; w <= top; w *= 2) counts.push_back(static_cast<int>(w));
  if (static_cast<unsigned>(counts.back()) != top) counts.push_back(static_cast<int>(top));
  return counts;
}

WorkerSweep run_worker_sweep(const char* title, const sofe::topology::Topology& topo,
                             sofe::online::OnlineConfig cfg, int epoch_size,
                             const std::vector<int>& worker_counts) {
  std::cout << "\n" << title << " — pipeline worker sweep (epoch_size " << epoch_size
            << ", solver sofda)\n";
  WorkerSweep sweep;
  sweep.name = title;
  sweep.epoch_size = epoch_size;
  cfg.epoch_size = epoch_size;

  // The determinism reference: the sequential epoch driver over the same
  // stream.  Every sweep point must reproduce this series bit for bit.
  auto solver = sofe::api::make_solver("sofda");
  sofe::util::Stopwatch watch;
  const auto reference = simulate(topo, cfg, *solver);
  sweep.sequential_seconds = watch.seconds();

  sofe::util::Table table({"workers", "wall_s", "arrivals/s", "speedup", "stale", "spec",
                           "publish", "peak KB", "series"});
  for (int workers : worker_counts) {
    sofe::online::PipelineOptions popt;
    popt.workers = workers;
    watch.reset();
    const auto got = serve_pipelined(topo, cfg, "sofda", {}, popt);
    SweepPoint pt;
    pt.workers = workers;
    pt.seconds = watch.seconds();
    pt.arrivals_per_second =
        pt.seconds > 0.0 ? static_cast<double>(cfg.requests) / pt.seconds : 0.0;
    pt.stale_repriced = got.stale_repriced;
    pt.speculative_commits = got.speculative_commits;
    pt.publish_seconds = got.publish_seconds;
    pt.row_hits = got.closure_row_hits;
    pt.rows_retained = got.closure_rows_retained;
    pt.rows_evicted = got.closure_rows_evicted;
    pt.peak_closure_bytes = got.peak_closure_bytes;
    pt.identical = series_identical(got, reference);
    if (!pt.identical) {
      std::cerr << "ERROR: " << title << ": pipeline series at " << workers
                << " workers diverged from the sequential epoch driver\n";
    }
    table.add_row({std::to_string(workers), sofe::util::Table::num(pt.seconds, 3),
                   sofe::util::Table::num(pt.arrivals_per_second, 1),
                   sofe::util::Table::num(
                       pt.seconds > 0.0 ? sweep.sequential_seconds / pt.seconds : 1.0, 2),
                   std::to_string(pt.stale_repriced), std::to_string(pt.speculative_commits),
                   sofe::util::Table::num(pt.publish_seconds * 1e3, 2) + "ms",
                   sofe::util::Table::num(
                       static_cast<double>(pt.peak_closure_bytes) / 1024.0, 1),
                   pt.identical ? "bit-identical" : "DIVERGED"});
    sweep.points.push_back(pt);
  }
  table.print();
  std::cout << "sequential epoch driver: " << sofe::util::Table::num(sweep.sequential_seconds, 3)
            << "s (" << hardware_concurrency() << " hardware threads on this machine)\n";
  return sweep;
}

void append_phase_json(std::ostringstream& out, const char* key,
                       const sofe::api::PhaseSummary& s) {
  out << "\"" << key << "\":{\"count\":" << s.count << ",\"total_s\":" << s.total
      << ",\"mean_s\":" << s.mean << ",\"p50_s\":" << s.p50 << ",\"p95_s\":" << s.p95
      << ",\"max_s\":" << s.max << "}";
}

void write_json(const std::vector<PanelMeasurement>& panels,
                const std::vector<WorkerSweep>& sweeps,
                const std::vector<RetentionSweep>& retention, bool smoke, const char* path) {
  // The bench/smoke envelope comes from the shared writer (bench_util.hpp).
  // "hardware_concurrency" keys the worker sweep: the sweep only probes
  // counts this machine can actually schedule, so throughput points from
  // different machines are comparable only via this field.
  sofe::bench::BenchJsonWriter writer("fig12_online", smoke);
  std::ostringstream& out = writer.body();
  out << ",\"hardware_concurrency\":" << hardware_concurrency() << ",\"panels\":[";
  for (std::size_t pi = 0; pi < panels.size(); ++pi) {
    const auto& panel = panels[pi];
    out << (pi ? "," : "") << "{\"name\":\"" << panel.name << "\",\"solvers\":[";
    for (std::size_t si = 0; si < panel.solvers.size(); ++si) {
      const auto& m = panel.solvers[si];
      const double inc_closure = m.incremental.closure().total;
      const double re_closure = m.recompute.closure().total;
      const double inc_pricing = m.incremental.pricing().total;
      const double re_pricing = m.recompute.pricing().total;
      out << (si ? "," : "") << "{\"name\":\"" << m.name << "\""
          << ",\"arrival_loop_seconds\":" << m.incremental_seconds
          << ",\"arrival_loop_seconds_recompute\":" << m.rebuild_seconds << ",\"speedup\":"
          << (m.incremental_seconds > 0.0 ? m.rebuild_seconds / m.incremental_seconds : 1.0)
          << ",\"closure_seconds\":" << inc_closure
          << ",\"closure_seconds_recompute\":" << re_closure << ",\"closure_speedup\":"
          << (inc_closure > 0.0 ? re_closure / inc_closure : 1.0)
          << ",\"pricing_seconds\":" << inc_pricing
          << ",\"pricing_seconds_recompute\":" << re_pricing << ",\"pricing_speedup\":"
          << (inc_pricing > 0.0 ? re_pricing / inc_pricing : 1.0)
          << ",\"bit_identical\":" << (m.identical ? "true" : "false")
          << ",\"solves\":" << m.incremental.solves()
          << ",\"closure_cache\":{\"hits\":" << m.incremental.cache_hits()
          << ",\"repairs\":" << m.incremental.repairs()
          << ",\"rebuilds\":" << m.incremental.rebuilds()
          << "},\"pricing_cache\":{\"hits\":" << m.incremental.pricing_hits()
          << ",\"repriced\":" << m.incremental.pricing_repriced()
          << ",\"flushes\":" << m.incremental.pricing_flushes()
          << "},\"closure_rows\":{\"hits\":" << m.incremental.closure_row_hits()
          << ",\"retained\":" << m.incremental.closure_rows_retained()
          << ",\"evicted\":" << m.incremental.closure_rows_evicted()
          << ",\"peak_bytes\":" << m.incremental.peak_closure_bytes() << "},\"phases\":{";
      append_phase_json(out, "closure", m.incremental.closure());
      out << ",";
      append_phase_json(out, "pricing", m.incremental.pricing());
      out << ",";
      append_phase_json(out, "solve", m.incremental.solve());
      out << ",";
      append_phase_json(out, "total", m.incremental.total());
      out << "}}";
    }
    out << "]}";
  }
  out << "],\"worker_sweeps\":[";
  for (std::size_t wi = 0; wi < sweeps.size(); ++wi) {
    const auto& sweep = sweeps[wi];
    out << (wi ? "," : "") << "{\"name\":\"" << sweep.name << "\",\"solver\":\"sofda\""
        << ",\"epoch_size\":" << sweep.epoch_size
        << ",\"sequential_seconds\":" << sweep.sequential_seconds << ",\"points\":[";
    for (std::size_t pi = 0; pi < sweep.points.size(); ++pi) {
      const auto& pt = sweep.points[pi];
      out << (pi ? "," : "") << "{\"workers\":" << pt.workers << ",\"seconds\":" << pt.seconds
          << ",\"arrivals_per_second\":" << pt.arrivals_per_second
          << ",\"speedup_vs_sequential\":"
          << (pt.seconds > 0.0 ? sweep.sequential_seconds / pt.seconds : 1.0)
          << ",\"stale_repriced\":" << pt.stale_repriced
          << ",\"speculative_commits\":" << pt.speculative_commits
          << ",\"publish_seconds\":" << pt.publish_seconds
          << ",\"closure_rows\":{\"hits\":" << pt.row_hits
          << ",\"retained\":" << pt.rows_retained << ",\"evicted\":" << pt.rows_evicted
          << ",\"peak_bytes\":" << pt.peak_closure_bytes << "}"
          << ",\"bit_identical\":" << (pt.identical ? "true" : "false") << "}";
    }
    out << "]}";
  }
  out << "],\"retention_sweeps\":[";
  for (std::size_t ri = 0; ri < retention.size(); ++ri) {
    const auto& sweep = retention[ri];
    out << (ri ? "," : "") << "{\"name\":\"" << sweep.name << "\",\"solver\":\"sofda\""
        << ",\"source_pool\":" << sweep.source_pool
        << ",\"source_alpha\":" << sweep.source_alpha << ",\"points\":[";
    for (std::size_t pi = 0; pi < sweep.points.size(); ++pi) {
      const auto& pt = sweep.points[pi];
      out << (pi ? "," : "") << "{\"retention_rows\":" << pt.retention_rows
          << ",\"seconds\":" << pt.seconds << ",\"solves\":" << pt.solves
          << ",\"closure_rows\":{\"hits\":" << pt.row_hits
          << ",\"retained\":" << pt.rows_retained << ",\"evicted\":" << pt.rows_evicted
          << ",\"peak_bytes\":" << pt.peak_closure_bytes << "}"
          << ",\"hit_rate\":" << pt.hit_rate
          << ",\"bit_identical\":" << (pt.identical ? "true" : "false") << "}";
    }
    out << "]}";
  }
  out << "]";
  writer.finish(path);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  bool recurring = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--recurring") == 0) recurring = true;
  }

  std::vector<PanelMeasurement> panels;
  std::vector<WorkerSweep> sweeps;
  std::vector<RetentionSweep> retention_sweeps;
  if (recurring) {
    std::cout << "=== Fig. 12 (recurring sources): steady-state retention panels ===\n";
    // Sources recur from a fixed Zipf-ish pool and requests depart after a
    // holding window, so the working set churns without saturating — the
    // regime the LRU row-retention window targets (DESIGN.md §13).
    sofe::online::OnlineConfig cfg;
    cfg.requests = smoke ? 10 : 60;
    cfg.min_destinations = smoke ? 3 : 13;
    cfg.max_destinations = smoke ? 5 : 17;
    cfg.min_sources = smoke ? 2 : 8;
    cfg.max_sources = smoke ? 3 : 12;
    cfg.holding_arrivals = smoke ? 4 : 8;
    cfg.source_pool = smoke ? 8 : 16;
    cfg.source_alpha = 0.8;
    cfg.seed = 15;
    panels.push_back(run_panel(
        smoke ? "SoftLayer, 10 arrivals, recurring sources (smoke)"
              : "(f) SoftLayer, 60 arrivals, recurring sources (steady state)",
        sofe::topology::softlayer(), cfg, smoke ? 2 : 10));
    retention_sweeps.push_back(run_retention_sweep(
        smoke ? "SoftLayer recurring (smoke)" : "SoftLayer, 60 recurring arrivals",
        sofe::topology::softlayer(), cfg, {0, 256}));
    // The pipeline's epoch publisher over the same recurring stream: the
    // COW publish + retention path the TSan CI cell must see concurrent.
    sweeps.push_back(run_worker_sweep(
        smoke ? "SoftLayer recurring (smoke)" : "SoftLayer, 60 recurring arrivals",
        sofe::topology::softlayer(), cfg, /*epoch_size=*/4,
        smoke ? std::vector<int>{1, 2} : sweep_worker_counts()));
    if (!smoke) {
      sofe::online::OnlineConfig cg;
      cg.requests = 40;
      cg.min_destinations = 20;
      cg.max_destinations = 60;
      cg.min_sources = 10;
      cg.max_sources = 30;
      cg.holding_arrivals = 10;
      cg.source_pool = 40;
      cg.source_alpha = 0.8;
      cg.seed = 16;
      retention_sweeps.push_back(run_retention_sweep("Cogent, 40 recurring arrivals",
                                                     sofe::topology::cogent(), cg, {0, 256}));
    }
  } else if (smoke) {
    std::cout << "=== Fig. 12 (smoke): online deployment, incremental pipeline ===\n";
    sofe::online::OnlineConfig cfg;
    cfg.requests = 8;
    cfg.min_destinations = 3;
    cfg.max_destinations = 5;
    cfg.min_sources = 2;
    cfg.max_sources = 3;
    cfg.seed = 12;
    panels.push_back(run_panel("SoftLayer, 8 arrivals (smoke)", sofe::topology::softlayer(),
                               cfg, 2));
    // Smoke sweep keeps workers {1, 2}: enough to drive the concurrent
    // publish/commit path (the TSan CI cell leans on this) while staying
    // seconds-fast on one core.
    sweeps.push_back(run_worker_sweep("SoftLayer (smoke)", sofe::topology::softlayer(), cfg,
                                      /*epoch_size=*/4, {1, 2}));
  } else {
    std::cout << "=== Fig. 12: online deployment, accumulative cost ===\n";
    {
      sofe::online::OnlineConfig cfg;
      cfg.requests = 30;
      cfg.min_destinations = 13;
      cfg.max_destinations = 17;
      cfg.min_sources = 8;
      cfg.max_sources = 12;
      cfg.seed = 12;
      panels.push_back(run_panel("(a) SoftLayer, 30 arrivals", sofe::topology::softlayer(),
                                 cfg, 5));
    }
    {
      sofe::online::OnlineConfig cfg;
      cfg.requests = 45;
      cfg.min_destinations = 20;
      cfg.max_destinations = 60;
      cfg.min_sources = 10;
      cfg.max_sources = 30;
      cfg.seed = 13;
      panels.push_back(run_panel("(b) Cogent, 45 arrivals", sofe::topology::cogent(), cfg, 5));
    }
    {
      // Beyond the paper: an Inet-scale panel where hub-tree construction
      // (not k-stroll pricing, which is graph-size independent) dominates
      // the arrival loop — the regime the delta-aware repair targets.
      sofe::online::OnlineConfig cfg;
      cfg.requests = 20;
      cfg.min_destinations = 8;
      cfg.max_destinations = 12;
      cfg.min_sources = 3;
      cfg.max_sources = 5;
      cfg.seed = 21;
      cfg.link_capacity = 400.0;  // wider pipes: the 2k-node core carries more streams
      panels.push_back(run_panel("(c) Inet-2000, 20 arrivals (beyond the paper)",
                                 sofe::topology::inet(2000, 4000, 8, 21), cfg, 4));
    }
    {
      // Beyond the paper: the churn scenario of the online-admission
      // literature — every request departs holding_arrivals later,
      // returning its bandwidth/VNF charges as cost-RESTORE deltas.  This
      // sweeps the pricing cache through both delta directions and keeps
      // the network in a steady state instead of saturating.
      sofe::online::OnlineConfig cfg;
      cfg.requests = 40;
      cfg.min_destinations = 13;
      cfg.max_destinations = 17;
      cfg.min_sources = 8;
      cfg.max_sources = 12;
      cfg.holding_arrivals = 8;
      cfg.seed = 14;
      panels.push_back(run_panel("(d) SoftLayer, 40 arrivals, departures after 8 (holding sweep)",
                                 sofe::topology::softlayer(), cfg, 8));
    }
    {
      // The row-level sweet spot: single-VNF chains (|C| = 1) at the
      // Fig.7 alpha = 0 end of the cost model on SoftLayer.  With
      // free setup the only per-arrival change is link prices, and with
      // one VNF per chain the repriced segments run source -> VM and
      // VM -> destination — they miss the (VM, VM) closure block, so
      // chain invalidation is decided row by row and untouched chains
      // are served straight from the cache instead of merely re-pricing
      // faster.
      sofe::online::OnlineConfig cfg;
      cfg.requests = 30;
      cfg.min_destinations = 13;
      cfg.max_destinations = 17;
      cfg.min_sources = 8;
      cfg.max_sources = 12;
      cfg.chain_length = 1;
      cfg.setup_scale = 0.0;
      cfg.seed = 23;
      panels.push_back(run_panel(
          "(e) SoftLayer, 30 arrivals, |C|=1, zero setup (per-entry invalidation)",
          sofe::topology::softlayer(), cfg, 5));
    }
    {
      // Pipeline worker sweep (DESIGN.md §10): admission throughput of the
      // epoch-pipelined service on the paper topologies, worker counts
      // pinned to this machine's hardware concurrency.  Epoch size 8 gives
      // the workers real in-epoch parallelism to exploit.
      const auto counts = sweep_worker_counts();
      sofe::online::OnlineConfig cfg;
      cfg.requests = 40;
      cfg.min_destinations = 13;
      cfg.max_destinations = 17;
      cfg.min_sources = 8;
      cfg.max_sources = 12;
      cfg.seed = 12;
      sweeps.push_back(run_worker_sweep("SoftLayer, 40 arrivals", sofe::topology::softlayer(),
                                        cfg, /*epoch_size=*/8, counts));
      cfg.requests = 32;
      cfg.min_destinations = 20;
      cfg.max_destinations = 60;
      cfg.min_sources = 10;
      cfg.max_sources = 30;
      cfg.seed = 13;
      sweeps.push_back(run_worker_sweep("Cogent, 32 arrivals", sofe::topology::cogent(), cfg,
                                        /*epoch_size=*/8, counts));
    }
    {
      // Steady-state panels (DESIGN.md §13): recurring sources + departures
      // keep yesterday's hubs coming back, which is what the LRU retention
      // window monetises — the full --json artifact carries both the panel
      // and the on/off sweep so the hit rate and peak-bytes deltas are
      // tracked run over run.
      sofe::online::OnlineConfig cfg;
      cfg.requests = 60;
      cfg.min_destinations = 13;
      cfg.max_destinations = 17;
      cfg.min_sources = 8;
      cfg.max_sources = 12;
      cfg.holding_arrivals = 8;
      cfg.source_pool = 16;
      cfg.source_alpha = 0.8;
      cfg.seed = 15;
      panels.push_back(run_panel("(f) SoftLayer, 60 arrivals, recurring sources (steady state)",
                                 sofe::topology::softlayer(), cfg, 10));
      retention_sweeps.push_back(run_retention_sweep(
          "SoftLayer, 60 recurring arrivals", sofe::topology::softlayer(), cfg, {0, 256}));
      sofe::online::OnlineConfig cg;
      cg.requests = 40;
      cg.min_destinations = 20;
      cg.max_destinations = 60;
      cg.min_sources = 10;
      cg.max_sources = 30;
      cg.holding_arrivals = 10;
      cg.source_pool = 40;
      cg.source_alpha = 0.8;
      cg.seed = 16;
      retention_sweeps.push_back(run_retention_sweep("Cogent, 40 recurring arrivals",
                                                     sofe::topology::cogent(), cg, {0, 256}));
    }
  }

  if (json) write_json(panels, sweeps, retention_sweeps, smoke, "BENCH_online.json");

  for (const auto& panel : panels) {
    for (const auto& m : panel.solvers) {
      if (!m.identical) return 1;  // the smoke ctest entry fails loudly
    }
  }
  for (const auto& sweep : sweeps) {
    for (const auto& pt : sweep.points) {
      if (!pt.identical) return 1;  // pipeline divergence fails just as loudly
    }
  }
  for (const auto& sweep : retention_sweeps) {
    for (const auto& pt : sweep.points) {
      if (!pt.identical) return 1;  // retention must be a pure speed knob
    }
  }
  return 0;
}
