// Fig. 12: online deployment — accumulative cost vs number of arrived
// demands, (a) SoftLayer (30 arrivals, |D|~U[13,17], |S|~U[8,12]) and
// (b) Cogent (45 arrivals, |D|~U[20,60], |S|~U[10,30]); |C| = 3.
//
// Expected shape: all curves grow super-linearly as the network loads up;
// SOFDA's stays lowest because it prices congestion into every embedding.

#include <iostream>

#include "bench_util.hpp"
#include "sofe/online/simulator.hpp"

namespace {

void run_panel(const char* title, const sofe::topology::Topology& topo,
               const sofe::online::OnlineConfig& cfg, int print_every) {
  std::cout << "\n" << title << "\n";
  // Persistent sessions: across the arrival sequence only link/VM prices
  // change, so each solver reuses its engine and closure workspaces from
  // one embedding to the next (the series is bit-identical to per-call
  // embedding; see test_api).
  std::vector<sofe::online::OnlineResult> results;
  std::vector<std::string> header{"#demands"};
  for (const auto& [display, registered] : sofe::bench::comparison_solvers()) {
    auto solver = sofe::api::make_solver(registered);
    auto r = simulate(topo, cfg, *solver);
    r.algorithm = display;
    results.push_back(std::move(r));
    header.push_back(display);
  }
  sofe::util::Table table(header);
  for (int i = print_every - 1; i < cfg.requests; i += print_every) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (const auto& r : results) {
      row.push_back(sofe::util::Table::num(r.accumulative_cost[static_cast<std::size_t>(i)], 0));
    }
    table.add_row(std::move(row));
  }
  table.print();
  for (const auto& r : results) {
    std::cout << r.algorithm << ": overloaded links at end = " << r.overloaded_links
              << ", infeasible = " << r.infeasible_requests << "\n";
  }
}

}  // namespace

int main() {
  std::cout << "=== Fig. 12: online deployment, accumulative cost ===\n";
  {
    sofe::online::OnlineConfig cfg;
    cfg.requests = 30;
    cfg.min_destinations = 13;
    cfg.max_destinations = 17;
    cfg.min_sources = 8;
    cfg.max_sources = 12;
    cfg.seed = 12;
    run_panel("(a) SoftLayer, 30 arrivals", sofe::topology::softlayer(), cfg, 5);
  }
  {
    sofe::online::OnlineConfig cfg;
    cfg.requests = 45;
    cfg.min_destinations = 20;
    cfg.max_destinations = 60;
    cfg.min_sources = 10;
    cfg.max_sources = 30;
    cfg.seed = 13;
    run_panel("(b) Cogent, 45 arrivals", sofe::topology::cogent(), cfg, 5);
  }
  return 0;
}
