// Fig. 12: online deployment — accumulative cost vs number of arrived
// demands, (a) SoftLayer (30 arrivals, |D|~U[13,17], |S|~U[8,12]) and
// (b) Cogent (45 arrivals, |D|~U[20,60], |S|~U[10,30]); |C| = 3.
//
// Expected shape: all curves grow super-linearly as the network loads up;
// SOFDA's stays lowest because it prices congestion into every embedding.
//
// This harness is also the incremental pipeline's acceptance bench
// (DESIGN.md §8 + §9): every solver runs the arrival loop twice — once
// with the delta-aware session (SolverOptions::incremental closure repair
// plus the ::incremental_pricing chain cache) and once with the recomputing
// baseline (both knobs off, per-arrival Problem copies) — verifies the two
// series bit for bit (exit 1 on any divergence), and reports the
// arrival-loop speedup, the pricing-cache hit/reprice tallies and a
// per-phase breakdown.
//
// Flags:
//   --smoke   tiny instance (CI: exercises the incremental path in seconds);
//             the JSON carries "smoke": true so consumers never mistake the
//             reduced panel set for a full run
//   --json    additionally write the measurements to BENCH_online.json

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "sofe/online/simulator.hpp"

namespace {

struct SolverMeasurement {
  std::string name;
  sofe::online::OnlineResult series;         // incremental run (reported)
  sofe::api::ReportAccumulator incremental;  // per-arrival phase stats
  sofe::api::ReportAccumulator recompute;    // …of the recomputing baseline
  double incremental_seconds = 0.0;          // arrival-loop wall time
  double rebuild_seconds = 0.0;              // recomputing baseline wall time
  bool identical = true;                     // series bit-identical across modes
};

struct PanelMeasurement {
  std::string name;
  std::vector<SolverMeasurement> solvers;
};

bool series_identical(const sofe::online::OnlineResult& a, const sofe::online::OnlineResult& b) {
  if (a.accumulative_cost.size() != b.accumulative_cost.size()) return false;
  for (std::size_t i = 0; i < a.accumulative_cost.size(); ++i) {
    if (a.accumulative_cost[i] != b.accumulative_cost[i]) return false;  // bitwise
    if (a.per_request_cost[i] != b.per_request_cost[i]) return false;
  }
  return a.infeasible_requests == b.infeasible_requests &&
         a.overloaded_links == b.overloaded_links;
}

PanelMeasurement run_panel(const char* title, const sofe::topology::Topology& topo,
                           const sofe::online::OnlineConfig& cfg, int print_every) {
  std::cout << "\n" << title << "\n";
  PanelMeasurement panel;
  panel.name = title;

  std::vector<std::string> header{"#demands"};
  for (const auto& [display, registered] : sofe::bench::comparison_solvers()) {
    SolverMeasurement m;
    m.name = display;

    // Incremental arrival loop: ONE persistent Problem, sessions repair
    // their closures from the per-arrival cost deltas.
    auto solver = sofe::api::make_solver(registered);
    solver->set_report_sink(&m.incremental);
    sofe::util::Stopwatch watch;
    m.series = simulate(topo, cfg, *solver);
    m.incremental_seconds = watch.seconds();
    m.series.algorithm = display;

    // Recomputing baseline: per-arrival Problem copies + strict sessions
    // that rebuild the closure whenever anything changed and re-price every
    // chain from scratch (the pre-§9 pricing path).
    sofe::api::SolverOptions rebuild_opt;
    rebuild_opt.incremental = false;
    rebuild_opt.incremental_pricing = false;
    auto rebuilding = sofe::api::make_solver(registered, rebuild_opt);
    rebuilding->set_report_sink(&m.recompute);
    auto ref_cfg = cfg;
    ref_cfg.copy_problems = true;
    watch.reset();
    const auto reference = simulate(topo, ref_cfg, *rebuilding);
    m.rebuild_seconds = watch.seconds();

    m.identical = series_identical(m.series, reference);
    if (!m.identical) {
      std::cerr << "ERROR: " << display
                << ": incremental series differs from the recomputing baseline\n";
    }
    header.push_back(display);
    panel.solvers.push_back(std::move(m));
  }

  sofe::util::Table table(header);
  for (int i = print_every - 1; i < cfg.requests; i += print_every) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (const auto& m : panel.solvers) {
      row.push_back(
          sofe::util::Table::num(m.series.accumulative_cost[static_cast<std::size_t>(i)], 0));
    }
    table.add_row(std::move(row));
  }
  table.print();
  for (const auto& m : panel.solvers) {
    std::cout << m.name << ": overloaded links at end = " << m.series.overloaded_links
              << ", infeasible = " << m.series.infeasible_requests
              << ", arrival loop " << sofe::util::Table::num(m.incremental_seconds, 3)
              << "s incremental vs " << sofe::util::Table::num(m.rebuild_seconds, 3)
              << "s recomputing (x"
              << sofe::util::Table::num(
                     m.incremental_seconds > 0.0 ? m.rebuild_seconds / m.incremental_seconds : 1.0,
                     2)
              << ", series " << (m.identical ? "bit-identical" : "DIVERGED") << ")\n";
    const double inc_closure = m.incremental.closure().total;
    const double re_closure = m.recompute.closure().total;
    if (re_closure > 0.0 && inc_closure > 0.0) {
      std::cout << "    closure phase: " << sofe::util::Table::num(inc_closure, 3)
                << "s repaired vs " << sofe::util::Table::num(re_closure, 3)
                << "s rebuilt (x" << sofe::util::Table::num(re_closure / inc_closure, 2)
                << ")\n";
    }
    const double inc_pricing = m.incremental.pricing().total;
    const double re_pricing = m.recompute.pricing().total;
    if (re_pricing > 0.0 && inc_pricing > 0.0) {
      std::cout << "    pricing phase: " << sofe::util::Table::num(inc_pricing, 3)
                << "s cached (" << m.incremental.pricing_hits() << " hits / "
                << m.incremental.pricing_repriced() << " repriced, "
                << m.incremental.pricing_flushes() << " flushes) vs "
                << sofe::util::Table::num(re_pricing, 3) << "s from scratch (x"
                << sofe::util::Table::num(re_pricing / inc_pricing, 2) << ")\n";
    }
  }
  std::vector<std::pair<std::string, const sofe::api::ReportAccumulator*>> rows;
  for (const auto& m : panel.solvers) rows.emplace_back(m.name, &m.incremental);
  sofe::bench::print_phase_breakdown("per-arrival phase breakdown (incremental)", rows);
  return panel;
}

void append_phase_json(std::ostringstream& out, const char* key,
                       const sofe::api::PhaseSummary& s) {
  out << "\"" << key << "\":{\"count\":" << s.count << ",\"total_s\":" << s.total
      << ",\"mean_s\":" << s.mean << ",\"p50_s\":" << s.p50 << ",\"p95_s\":" << s.p95
      << ",\"max_s\":" << s.max << "}";
}

void write_json(const std::vector<PanelMeasurement>& panels, bool smoke, const char* path) {
  std::ostringstream out;
  // "smoke" marks the reduced CI panel set: a --smoke --json run used to
  // overwrite a full BENCH_online.json with fewer panels and no way to
  // tell — consumers (CI artifacts, trend scripts) key on this field.
  out << "{\"bench\":\"fig12_online\",\"smoke\":" << (smoke ? "true" : "false")
      << ",\"panels\":[";
  for (std::size_t pi = 0; pi < panels.size(); ++pi) {
    const auto& panel = panels[pi];
    out << (pi ? "," : "") << "{\"name\":\"" << panel.name << "\",\"solvers\":[";
    for (std::size_t si = 0; si < panel.solvers.size(); ++si) {
      const auto& m = panel.solvers[si];
      const double inc_closure = m.incremental.closure().total;
      const double re_closure = m.recompute.closure().total;
      const double inc_pricing = m.incremental.pricing().total;
      const double re_pricing = m.recompute.pricing().total;
      out << (si ? "," : "") << "{\"name\":\"" << m.name << "\""
          << ",\"arrival_loop_seconds\":" << m.incremental_seconds
          << ",\"arrival_loop_seconds_recompute\":" << m.rebuild_seconds << ",\"speedup\":"
          << (m.incremental_seconds > 0.0 ? m.rebuild_seconds / m.incremental_seconds : 1.0)
          << ",\"closure_seconds\":" << inc_closure
          << ",\"closure_seconds_recompute\":" << re_closure << ",\"closure_speedup\":"
          << (inc_closure > 0.0 ? re_closure / inc_closure : 1.0)
          << ",\"pricing_seconds\":" << inc_pricing
          << ",\"pricing_seconds_recompute\":" << re_pricing << ",\"pricing_speedup\":"
          << (inc_pricing > 0.0 ? re_pricing / inc_pricing : 1.0)
          << ",\"bit_identical\":" << (m.identical ? "true" : "false")
          << ",\"solves\":" << m.incremental.solves()
          << ",\"closure_cache\":{\"hits\":" << m.incremental.cache_hits()
          << ",\"repairs\":" << m.incremental.repairs()
          << ",\"rebuilds\":" << m.incremental.rebuilds()
          << "},\"pricing_cache\":{\"hits\":" << m.incremental.pricing_hits()
          << ",\"repriced\":" << m.incremental.pricing_repriced()
          << ",\"flushes\":" << m.incremental.pricing_flushes() << "},\"phases\":{";
      append_phase_json(out, "closure", m.incremental.closure());
      out << ",";
      append_phase_json(out, "pricing", m.incremental.pricing());
      out << ",";
      append_phase_json(out, "solve", m.incremental.solve());
      out << ",";
      append_phase_json(out, "total", m.incremental.total());
      out << "}}";
    }
    out << "]}";
  }
  out << "]}\n";
  std::ofstream file(path);
  file << out.str();
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<PanelMeasurement> panels;
  if (smoke) {
    std::cout << "=== Fig. 12 (smoke): online deployment, incremental pipeline ===\n";
    sofe::online::OnlineConfig cfg;
    cfg.requests = 8;
    cfg.min_destinations = 3;
    cfg.max_destinations = 5;
    cfg.min_sources = 2;
    cfg.max_sources = 3;
    cfg.seed = 12;
    panels.push_back(run_panel("SoftLayer, 8 arrivals (smoke)", sofe::topology::softlayer(),
                               cfg, 2));
  } else {
    std::cout << "=== Fig. 12: online deployment, accumulative cost ===\n";
    {
      sofe::online::OnlineConfig cfg;
      cfg.requests = 30;
      cfg.min_destinations = 13;
      cfg.max_destinations = 17;
      cfg.min_sources = 8;
      cfg.max_sources = 12;
      cfg.seed = 12;
      panels.push_back(run_panel("(a) SoftLayer, 30 arrivals", sofe::topology::softlayer(),
                                 cfg, 5));
    }
    {
      sofe::online::OnlineConfig cfg;
      cfg.requests = 45;
      cfg.min_destinations = 20;
      cfg.max_destinations = 60;
      cfg.min_sources = 10;
      cfg.max_sources = 30;
      cfg.seed = 13;
      panels.push_back(run_panel("(b) Cogent, 45 arrivals", sofe::topology::cogent(), cfg, 5));
    }
    {
      // Beyond the paper: an Inet-scale panel where hub-tree construction
      // (not k-stroll pricing, which is graph-size independent) dominates
      // the arrival loop — the regime the delta-aware repair targets.
      sofe::online::OnlineConfig cfg;
      cfg.requests = 20;
      cfg.min_destinations = 8;
      cfg.max_destinations = 12;
      cfg.min_sources = 3;
      cfg.max_sources = 5;
      cfg.seed = 21;
      cfg.link_capacity = 400.0;  // wider pipes: the 2k-node core carries more streams
      panels.push_back(run_panel("(c) Inet-2000, 20 arrivals (beyond the paper)",
                                 sofe::topology::inet(2000, 4000, 8, 21), cfg, 4));
    }
    {
      // Beyond the paper: the churn scenario of the online-admission
      // literature — every request departs holding_arrivals later,
      // returning its bandwidth/VNF charges as cost-RESTORE deltas.  This
      // sweeps the pricing cache through both delta directions and keeps
      // the network in a steady state instead of saturating.
      sofe::online::OnlineConfig cfg;
      cfg.requests = 40;
      cfg.min_destinations = 13;
      cfg.max_destinations = 17;
      cfg.min_sources = 8;
      cfg.max_sources = 12;
      cfg.holding_arrivals = 8;
      cfg.seed = 14;
      panels.push_back(run_panel("(d) SoftLayer, 40 arrivals, departures after 8 (holding sweep)",
                                 sofe::topology::softlayer(), cfg, 8));
    }
    {
      // The row-level sweet spot: single-VNF chains (|C| = 1) at the
      // Fig.7 alpha = 0 end of the cost model on SoftLayer.  With
      // free setup the only per-arrival change is link prices, and with
      // one VNF per chain the repriced segments run source -> VM and
      // VM -> destination — they miss the (VM, VM) closure block, so
      // chain invalidation is decided row by row and untouched chains
      // are served straight from the cache instead of merely re-pricing
      // faster.
      sofe::online::OnlineConfig cfg;
      cfg.requests = 30;
      cfg.min_destinations = 13;
      cfg.max_destinations = 17;
      cfg.min_sources = 8;
      cfg.max_sources = 12;
      cfg.chain_length = 1;
      cfg.setup_scale = 0.0;
      cfg.seed = 23;
      panels.push_back(run_panel(
          "(e) SoftLayer, 30 arrivals, |C|=1, zero setup (per-entry invalidation)",
          sofe::topology::softlayer(), cfg, 5));
    }
  }

  if (json) write_json(panels, smoke, "BENCH_online.json");

  for (const auto& panel : panels) {
    for (const auto& m : panel.solvers) {
      if (!m.identical) return 1;  // the smoke ctest entry fails loudly
    }
  }
  return 0;
}
